package trigger

// In-package snapshot tests: the fingerprint fence, NotHit synthesis and
// plan-compatibility gating, all pinned against the legacy full-run path
// on the toy system. The cross-system differential oracle lives in the
// external test package (snapshot_diff_test.go), which can import core.

import (
	"reflect"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/probe"
	"repro/internal/systems/toysys"
)

// planPoint returns the captured dynamic point with the smallest
// dispatch ordinal — a deterministic pick across map iteration order.
func planPoint(t *testing.T, p *SnapshotPlan) probe.DynPoint {
	t.Helper()
	var best probe.DynPoint
	found := false
	for d, ps := range p.points {
		if !found || ps.ordinal < p.points[best].ordinal {
			best, found = d, true
		}
	}
	if !found {
		t.Fatal("snapshot plan captured no points")
	}
	return best
}

func TestSnapshotForkMatchesLegacyRun(t *testing.T) {
	tester := toyTester(t, &toysys.Runner{})
	plan := tester.BuildSnapshotPlan()
	if plan.Points() == 0 {
		t.Fatal("reference pass captured no points")
	}
	d := planPoint(t, plan)
	want := tester.TestPoint(d) // Snapshots nil: the legacy full run

	forks := snapshotForks.Value()
	tester.Snapshots = plan
	got := tester.TestPoint(d)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("forked report diverged:\nlegacy   %+v\nsnapshot %+v", want, got)
	}
	if v := snapshotForks.Value(); v != forks+1 {
		t.Errorf("snapshot_forks_total moved %d→%d, want one fork", forks, v)
	}
}

func TestSnapshotSynthesizesNotHit(t *testing.T) {
	tester := toyTester(t, &toysys.Runner{})
	plan := tester.BuildSnapshotPlan()
	d := probe.DynPoint{
		Point:    "toy.Master.handleLost#0", // never executes fault-free
		Scenario: crashpoint.PostWrite,
		Stack:    "toy.Master.handleLost",
	}
	if plan.Hit(d) {
		t.Fatalf("reference pass unexpectedly hit %s", d.Key())
	}
	want := tester.TestPoint(d)

	synth := snapshotSynth.Value()
	tester.Snapshots = plan
	got := tester.TestPoint(d)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("synthesized report diverged:\nlegacy     %+v\nsynthesized %+v", want, got)
	}
	if got.Outcome != NotHit {
		t.Errorf("outcome = %v, want not-hit", got.Outcome)
	}
	if v := snapshotSynth.Value(); v != synth+1 {
		t.Errorf("snapshot_synthesized_total moved %d→%d, want one synthesis", synth, v)
	}
}

// TestSnapshotFenceFallsBackOnDivergence corrupts a recorded fingerprint
// so the fork trips its fence mid-replay; the point must transparently
// re-run on the legacy path and still report identically.
func TestSnapshotFenceFallsBackOnDivergence(t *testing.T) {
	tester := toyTester(t, &toysys.Runner{})
	plan := tester.BuildSnapshotPlan()
	d := planPoint(t, plan)
	want := tester.TestPoint(d)

	ps := plan.points[d]
	ps.fp.NodeSum++ // any field will do: the fence compares the whole struct
	plan.points[d] = ps

	invalid, forks := snapshotInvalid.Value(), snapshotForks.Value()
	tester.Snapshots = plan
	got := tester.TestPoint(d)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fallback report diverged:\nlegacy   %+v\nfallback %+v", want, got)
	}
	if v := snapshotInvalid.Value(); v != invalid+1 {
		t.Errorf("snapshot_invalidations_total moved %d→%d, want one invalidation", invalid, v)
	}
	if v := snapshotForks.Value(); v != forks {
		t.Errorf("snapshot_forks_total moved %d→%d on an abandoned fork", forks, v)
	}
}

// TestSnapshotPlanParameterMismatchIgnored: a plan recorded under other
// run parameters must be declined wholesale, not fenced fork-by-fork.
func TestSnapshotPlanParameterMismatchIgnored(t *testing.T) {
	tester := toyTester(t, &toysys.Runner{})
	plan := tester.BuildSnapshotPlan()
	d := planPoint(t, plan)

	tester.Seed++ // the plan no longer matches
	legacy := *tester
	legacy.Snapshots = nil
	want := legacy.TestPoint(d)

	forks, synth := snapshotForks.Value(), snapshotSynth.Value()
	tester.Snapshots = plan
	got := tester.TestPoint(d)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mismatched-plan report diverged:\nlegacy %+v\ngot    %+v", want, got)
	}
	if snapshotForks.Value() != forks || snapshotSynth.Value() != synth {
		t.Error("an incompatible plan was consulted")
	}
}
