package trigger

// In-package snapshot tests: the fingerprint fence, NotHit synthesis and
// plan-compatibility gating, all pinned against the legacy full-run path
// on the toy system. The cross-system differential oracle lives in the
// external test package (snapshot_diff_test.go), which can import core.

import (
	"reflect"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/probe"
	"repro/internal/systems/cluster"
	"repro/internal/systems/toysys"
)

// planPoint returns the captured dynamic point with the smallest
// dispatch ordinal — a deterministic pick across map iteration order.
func planPoint(t *testing.T, p *SnapshotPlan) probe.DynPoint {
	t.Helper()
	var best probe.DynPoint
	found := false
	for d, ps := range p.points {
		if !found || ps.ordinal < p.points[best].ordinal {
			best, found = d, true
		}
	}
	if !found {
		t.Fatal("snapshot plan captured no points")
	}
	return best
}

func TestSnapshotForkMatchesLegacyRun(t *testing.T) {
	tester := toyTester(t, &toysys.Runner{})
	plan := tester.BuildSnapshotPlan()
	if plan.Points() == 0 {
		t.Fatal("reference pass captured no points")
	}
	if plan.Rungs() == 0 {
		t.Fatal("toysys is Cloneable but the plan captured no clone rungs")
	}
	d := planPoint(t, plan)
	want := tester.TestPoint(d) // Snapshots nil: the legacy full run

	clones := cloneForks.Value()
	tester.Snapshots = plan
	got := tester.TestPoint(d)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("forked report diverged:\nlegacy   %+v\nsnapshot %+v", want, got)
	}
	if v := cloneForks.Value(); v != clones+1 {
		t.Errorf("clone_forks_total moved %d→%d, want one clone fork", clones, v)
	}
}

// TestSnapshotNoCloneForksLeanReplay pins the lean-replay tier: with
// NoClone the plan captures no rungs and every fork replays its prefix
// from t=0, still byte-identical to the legacy full run.
func TestSnapshotNoCloneForksLeanReplay(t *testing.T) {
	tester := toyTester(t, &toysys.Runner{})
	tester.NoClone = true
	plan := tester.BuildSnapshotPlan()
	if plan.Rungs() != 0 {
		t.Fatalf("NoClone plan captured %d rungs, want none", plan.Rungs())
	}
	d := planPoint(t, plan)
	want := tester.TestPoint(d)

	forks, clones := snapshotForks.Value(), cloneForks.Value()
	tester.Snapshots = plan
	got := tester.TestPoint(d)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("lean fork diverged:\nlegacy %+v\nfork   %+v", want, got)
	}
	if v := snapshotForks.Value(); v != forks+1 {
		t.Errorf("snapshot_forks_total moved %d→%d, want one lean fork", forks, v)
	}
	if v := cloneForks.Value(); v != clones {
		t.Errorf("clone_forks_total moved %d→%d under NoClone", clones, v)
	}
}

func TestSnapshotSynthesizesNotHit(t *testing.T) {
	tester := toyTester(t, &toysys.Runner{})
	plan := tester.BuildSnapshotPlan()
	d := probe.DynPoint{
		Point:    "toy.Master.handleLost#0", // never executes fault-free
		Scenario: crashpoint.PostWrite,
		Stack:    "toy.Master.handleLost",
	}
	if plan.Hit(d) {
		t.Fatalf("reference pass unexpectedly hit %s", d.Key())
	}
	want := tester.TestPoint(d)

	synth := snapshotSynth.Value()
	tester.Snapshots = plan
	got := tester.TestPoint(d)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("synthesized report diverged:\nlegacy     %+v\nsynthesized %+v", want, got)
	}
	if got.Outcome != NotHit {
		t.Errorf("outcome = %v, want not-hit", got.Outcome)
	}
	if v := snapshotSynth.Value(); v != synth+1 {
		t.Errorf("snapshot_synthesized_total moved %d→%d, want one synthesis", synth, v)
	}
}

// TestSnapshotFenceFallsBackOnDivergence corrupts a recorded fingerprint
// so the fork trips its fence mid-replay; the point must transparently
// re-run on the legacy path and still report identically.
func TestSnapshotFenceFallsBackOnDivergence(t *testing.T) {
	tester := toyTester(t, &toysys.Runner{})
	plan := tester.BuildSnapshotPlan()
	d := planPoint(t, plan)
	want := tester.TestPoint(d)

	ps := plan.points[d]
	ps.fp.NodeSum++ // any field will do: the fence compares the whole struct
	plan.points[d] = ps

	invalid, forks := snapshotInvalid.Value(), snapshotForks.Value()
	fallbacks := cloneFallbacks.Value()
	tester.Snapshots = plan
	got := tester.TestPoint(d)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fallback report diverged:\nlegacy   %+v\nfallback %+v", want, got)
	}
	if v := cloneFallbacks.Value(); v != fallbacks+1 {
		t.Errorf("clone_fallbacks_total moved %d→%d, want one clone fallback", fallbacks, v)
	}
	if v := snapshotInvalid.Value(); v != invalid+1 {
		t.Errorf("snapshot_invalidations_total moved %d→%d, want one invalidation", invalid, v)
	}
	if v := snapshotForks.Value(); v != forks {
		t.Errorf("snapshot_forks_total moved %d→%d on an abandoned fork", forks, v)
	}
}

// TestSnapshotPlanParameterMismatchIgnored: a plan recorded under other
// run parameters must be declined wholesale, not fenced fork-by-fork.
func TestSnapshotPlanParameterMismatchIgnored(t *testing.T) {
	tester := toyTester(t, &toysys.Runner{})
	plan := tester.BuildSnapshotPlan()
	d := planPoint(t, plan)

	tester.Seed++ // the plan no longer matches
	legacy := *tester
	legacy.Snapshots = nil
	want := legacy.TestPoint(d)

	forks, synth := snapshotForks.Value(), snapshotSynth.Value()
	tester.Snapshots = plan
	got := tester.TestPoint(d)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mismatched-plan report diverged:\nlegacy %+v\ngot    %+v", want, got)
	}
	if snapshotForks.Value() != forks || snapshotSynth.Value() != synth {
		t.Error("an incompatible plan was consulted")
	}
}

// nonCloneableRun hides the concrete run behind the bare cluster.Run
// interface, so the Cloneable type assertion fails even though the
// underlying toysys run would satisfy it.
type nonCloneableRun struct{ cluster.Run }

type nonCloneableRunner struct{ *toysys.Runner }

func (r nonCloneableRunner) NewRun(cfg cluster.Config) cluster.Run {
	return nonCloneableRun{r.Runner.NewRun(cfg)}
}

// TestSnapshotNonCloneableDegradesToLeanReplay: a system that does not
// implement cluster.Cloneable gets a rung-less plan and every fork takes
// the lean-replay tier — same reports, snapshot_forks_total moving
// instead of clone_forks_total.
func TestSnapshotNonCloneableDegradesToLeanReplay(t *testing.T) {
	base := &toysys.Runner{}
	tester := toyTester(t, base)
	tester.Runner = nonCloneableRunner{base}
	plan := tester.BuildSnapshotPlan()
	if plan.Rungs() != 0 {
		t.Fatalf("non-Cloneable plan captured %d rungs, want none", plan.Rungs())
	}
	d := planPoint(t, plan)
	want := tester.TestPoint(d)

	forks, clones := snapshotForks.Value(), cloneForks.Value()
	tester.Snapshots = plan
	got := tester.TestPoint(d)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("non-Cloneable fork diverged:\nlegacy %+v\nfork   %+v", want, got)
	}
	if v := snapshotForks.Value(); v != forks+1 {
		t.Errorf("snapshot_forks_total moved %d→%d, want one lean fork", forks, v)
	}
	if v := cloneForks.Value(); v != clones {
		t.Errorf("clone_forks_total moved %d→%d on a non-Cloneable system", clones, v)
	}
}
