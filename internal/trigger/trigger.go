// Package trigger implements CrashTuner's fault-injection testing phase
// (§3.2): for each dynamic crash point, one fresh run of the system under
// test with exactly one injection. When the armed point is hit, the
// control center queries the online stash with the accessed runtime
// meta-info value to find the node that owns it, then shuts that node
// down (pre-read points — the synchronous graceful shutdown plays the
// role of the instrumented "shutdown RPC followed by a wait") or crashes
// it (post-write points).
//
// A bug is reported in three cases (§3.2.2): job failures, system hangs,
// and uncommon exceptions in the logs — exception signatures never seen
// in fault-free baseline runs. Runs that finish but exceed the timeout
// threshold (4× the fault-free duration, §4.1.3) are reported separately
// as timeout issues.
package trigger

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/campaign"
	"repro/internal/crashpoint"
	"repro/internal/dslog"
	"repro/internal/fleet"
	"repro/internal/logparse"
	"repro/internal/metainfo"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stash"
	"repro/internal/systems/cluster"
	"repro/internal/triage"
)

// Outcome classifies one injection run.
type Outcome int

// Outcomes, in increasing severity for reporting.
const (
	NotHit               Outcome = iota // the armed point never executed
	Unresolved                          // hit, but the value mapped to no node
	OK                                  // injected, system recovered correctly
	TimeoutIssue                        // finished, but > Timeout× baseline
	UncommonException                   // new unhandled exception signature
	Hang                                // workload never finished
	JobFailure                          // workload failed
	HarnessError                        // the harness, not the system, misbehaved
	RejoinNoWork                        // restarted node rejoined but got no work
	NeverRejoined                       // restarted node never rejoined the cluster
	DuplicateIncarnation                // two incarnations of one node online at once
	StaleRead                           // cluster accepted/rejected state from a formerly-isolated node
	SplitBrain                          // work owned on both sides of an open cut at once
	NeverHeals                          // cut healed but an alive node never reconnected
)

// MaxOutcome is the highest defined Outcome, for exhaustive iteration.
const MaxOutcome = NeverHeals

var outcomeNames = [...]string{
	"not-hit", "unresolved", "ok", "timeout-issue",
	"uncommon-exception", "hang", "job-failure", "harness-error",
	"rejoin-no-work", "never-rejoined", "duplicate-incarnation",
	"stale-read", "split-brain", "never-heals",
}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// IsBug reports whether the outcome is one of the three §3.2.2 bug
// conditions or one of the recovery-oracle conditions. HarnessError is
// deliberately not a bug: it flags a defect in the harness or the model
// (a panic, an exhausted step budget, a stalled worker), so it must
// surface in summaries without polluting the bug counts.
func (o Outcome) IsBug() bool {
	switch o {
	case JobFailure, Hang, UncommonException,
		RejoinNoWork, NeverRejoined, DuplicateIncarnation,
		StaleRead, SplitBrain, NeverHeals:
		return true
	}
	return false
}

// IsRecoveryBug reports whether the outcome is one of the recovery
// oracles that only a restart campaign can produce.
func (o Outcome) IsRecoveryBug() bool {
	return o == RejoinNoWork || o == NeverRejoined || o == DuplicateIncarnation
}

// IsPartitionBug reports whether the outcome is one of the partition
// oracles that only a network-cut campaign can produce.
func (o Outcome) IsPartitionBug() bool {
	return o == StaleRead || o == SplitBrain || o == NeverHeals
}

// Baseline captures fault-free behaviour for the oracle.
type Baseline struct {
	Duration sim.Time
	Status   cluster.Status
	// Exceptions is the fault-free census, keyed by the normalized form
	// (triage.NormalizeException) of every signature seen without
	// faults, so the oracle's "never seen in baseline" test is stable
	// across seeds and scales.
	Exceptions map[string]bool
	Runs       int
}

// Report is the result of testing one dynamic crash point.
type Report struct {
	Dyn      probe.DynPoint
	Outcome  Outcome
	Target   sim.NodeID // node chosen by the stash query
	Injected *sim.FaultRecord
	Duration sim.Time
	// NewExceptions are unhandled signatures absent from the baseline.
	NewExceptions []string
	// Witnesses are seeded-bug IDs whose flawed paths fired (attribution
	// only; the oracle does not consult them).
	Witnesses []string
	// Restarted lists nodes the recovery mode restarted during this run.
	Restarted []sim.NodeID
	// Partitioned reports that the injection opened a network cut, and
	// Healed that the cut was closed before the run ended.
	Partitioned bool
	Healed      bool
	// Guided marks a consistency-guided injection (the cut fired at the
	// recorded access ordinal GuidedOrdinal, not at the point's first
	// hit).
	Guided        bool
	GuidedOrdinal uint64
	// Reason carries the workload failure reason, if any.
	Reason string
}

// RecoveryOptions configures recovery-phase injection: after the primary
// fault, the victim is restarted and — optionally — hit again while it
// is recovering. The second fault is the interesting one: the paper's
// crash-recovery bugs live in the window where a node is back but not
// yet re-integrated.
type RecoveryOptions struct {
	// RestartDelay is how long after the injected fault the victim is
	// restarted. Zero means 2 s of simulated time — long enough for the
	// cluster to notice the departure, short enough to land inside the
	// workload.
	RestartDelay sim.Time
	// SecondFaultDelay, when positive, injects a second fault this long
	// after the restart, inside the recovery window.
	SecondFaultDelay sim.Time
	// SecondFaultKind selects the second fault: sim.FaultCrash (the
	// default) or sim.FaultShutdown.
	SecondFaultKind sim.FaultKind
}

func (rc *RecoveryOptions) restartDelay() sim.Time {
	if rc.RestartDelay > 0 {
		return rc.RestartDelay
	}
	return 2 * sim.Second
}

// Tester drives the injection campaign for one system.
type Tester struct {
	// Config carries the shared campaign-execution knobs (worker pool,
	// checkpointing, observability sink); see campaign.Config.
	campaign.Config

	Runner   cluster.Runner
	Analysis *metainfo.Analysis
	Matcher  *logparse.Matcher
	Baseline Baseline
	// Seed/Scale configure the test runs.
	Seed  int64
	Scale int
	// TimeoutFactor is the timeout-issue threshold (default 4).
	TimeoutFactor int
	// DeadlineFactor bounds each run at DeadlineFactor× baseline
	// duration; beyond it the run counts as hung (default 20, well above
	// the timeout-issue threshold so late-but-finishing runs are
	// observed finishing, as in §4.1.3).
	DeadlineFactor int
	// RandomTarget replaces the stash query with a random alive node
	// (the §3.2.2 alternative; used by the ablation experiment).
	RandomTarget bool
	// Recovery, when non-nil, switches the campaign to recovery-phase
	// injection: the victim is restarted after the fault (and optionally
	// faulted again during recovery), and the oracle is extended with
	// the recovery conditions (NeverRejoined, RejoinNoWork,
	// DuplicateIncarnation).
	Recovery *RecoveryOptions
	// Partition, when non-nil, switches the injected fault from a crash
	// or shutdown to a network cut isolating the target, and extends the
	// oracle with the partition conditions (StaleRead, SplitBrain,
	// NeverHeals). Combined with Recovery, the victim is also killed and
	// restarted inside the cut — partition-aware recovery. See
	// PartitionOptions.
	Partition *PartitionOptions
	// MaxSteps bounds each run's event count; zero means
	// sim.DefaultMaxSteps. A run that exhausts the budget is reported as
	// HarnessError (a livelocked model), not as a system bug.
	MaxSteps uint64
	// Snapshots, when non-nil and built under matching parameters (see
	// SnapshotPlan.compatible), forks each injection run from the
	// recorded reference pass instead of replaying the full observation
	// pipeline from t=0, and synthesizes never-hit points outright. Runs
	// stay byte-identical — a fingerprint fence falls back to the full
	// path on any divergence. See snapshot.go.
	Snapshots *SnapshotPlan
	// MaxClones bounds the clone ladder a snapshot plan captures for
	// Cloneable systems (default 16): more rungs mean shorter replay gaps
	// per fork but more retained engine copies. See snapshot.go.
	MaxClones int
	// NoClone disables clone forking entirely — the plan captures no
	// rungs and every fork lean-replays its prefix. For ablations and the
	// campaign benchmark's baseline leg.
	NoClone bool
}

// timeoutFactor returns the §4.1.3 timeout-issue threshold factor.
func (t *Tester) timeoutFactor() int {
	if t.TimeoutFactor <= 0 {
		return 4
	}
	return t.TimeoutFactor
}

// RunDeadline returns the per-run simulated-time deadline:
// DeadlineFactor× the baseline duration, floored at 30 s. Exported
// because snapshot plans are keyed on it (core caches plans per
// system/seed/scale/deadline/step-budget).
func (t *Tester) RunDeadline() sim.Time {
	deadlineFactor := t.DeadlineFactor
	if deadlineFactor <= 0 {
		deadlineFactor = 20
	}
	deadline := t.Baseline.Duration * sim.Time(deadlineFactor)
	if deadline < 30*sim.Second {
		deadline = 30 * sim.Second
	}
	return deadline
}

// scope labels the Tester's events: the system under test plus the
// campaign kind ("test"; "recovery" when the recovery oracle is on;
// "partition", "partition-recovery" or "partition-guided" for the
// network-cut fault family).
func (t *Tester) scope() obs.Scope {
	sc := obs.Scope{Campaign: "test"}
	switch {
	case t.Partition != nil && t.Partition.Guided:
		sc.Campaign = "partition-guided"
	case t.Partition != nil && t.Recovery != nil:
		sc.Campaign = "partition-recovery"
	case t.Partition != nil:
		sc.Campaign = "partition"
	case t.Recovery != nil:
		sc.Campaign = "recovery"
	}
	if t.Runner != nil {
		sc.System = t.Runner.Name()
	}
	return sc
}

// MeasureBaseline performs fault-free runs and unions their exception
// signatures; the longest duration becomes the reference.
func MeasureBaseline(r cluster.Runner, seed int64, scale, runs int, deadline sim.Time) Baseline {
	if runs < 1 {
		runs = 1
	}
	if deadline <= 0 {
		deadline = sim.Hour
	}
	b := Baseline{Exceptions: make(map[string]bool), Runs: runs, Status: cluster.Succeeded}
	for i := 0; i < runs; i++ {
		run := r.NewRun(cluster.Config{Seed: seed + int64(i), Scale: scale, Probe: probe.New(), Logs: dslog.NewRoot()})
		res := cluster.Drive(run, deadline)
		if res.End > b.Duration {
			b.Duration = res.End
		}
		for _, ex := range run.Engine().Exceptions() {
			b.Exceptions[triage.NormalizeException(ex.Signature)] = true
		}
		if run.Status() != cluster.Succeeded {
			b.Status = run.Status()
		}
	}
	return b
}

// TestPoint runs the system once with an injection armed at d.
func (t *Tester) TestPoint(d probe.DynPoint) Report { return t.runPoint(-1, d) }

// emitPhase reports one finished phase of run (or of the pipeline, when
// run < 0) to the Tester's sink.
func (t *Tester) emitPhase(run int, name string, wall time.Duration, simT sim.Time) {
	if t.Sink == nil {
		return
	}
	t.Sink.Emit(obs.Event{Kind: obs.PhaseEnd, Scope: t.scope(), Run: run, Phase: name, Wall: wall, Sim: simT})
}

// testPoint is TestPoint inside campaign job `run`: the same single
// injection, plus nested phase spans (setup → drive → oracle) on the
// Tester's sink so traces show where each run's wall-clock went.
func (t *Tester) testPoint(run int, d probe.DynPoint) Report {
	phaseStart := time.Now()
	timeoutFactor := t.timeoutFactor()
	deadline := t.RunDeadline()

	pb := probe.New()
	logs := dslog.NewRoot()
	matcher := t.Matcher
	if matcher == nil {
		matcher = logparse.NewMatcher(logparse.ExtractPatterns(t.Runner.Program()))
	}
	st := stash.New(t.Runner.Hosts(), matcher, t.Analysis)
	st.Attach(logs)
	sysRun := t.Runner.NewRun(cluster.Config{Seed: t.Seed, Scale: t.Scale, Probe: pb, Logs: logs})
	e := sysRun.Engine()
	e.MaxSteps = t.MaxSteps

	rep := Report{Dyn: d, Outcome: NotHit}
	fired := false
	resolvedMiss := false
	pb.OnAccess = func(a probe.Access) {
		if fired || a.Dyn() != d {
			return
		}
		fired = true
		target, ok := t.chooseTarget(e, st, a)
		if !ok {
			resolvedMiss = true
			return
		}
		rep.Target = target
		t.inject(sysRun, &rep, d, target)
	}
	t.emitPhase(run, "setup", time.Since(phaseStart), 0)

	phaseStart = time.Now()
	res := cluster.Drive(sysRun, deadline)
	t.emitPhase(run, "drive", time.Since(phaseStart), res.End)

	phaseStart = time.Now()
	rep.Duration = res.End
	rep.Witnesses = sysRun.Witnesses()
	rep.Reason = sysRun.FailureReason()
	rep.NewExceptions = t.newUnhandled(e)
	rep.Outcome = t.classify(fired, resolvedMiss, sysRun, res, rep.NewExceptions, timeoutFactor)
	t.emitPhase(run, "oracle", time.Since(phaseStart), 0)
	return rep
}

// inject performs the armed single injection on target — the crash or
// synchronous shutdown of the paper's campaigns, or, in partition mode,
// a network cut isolating the target (optionally followed by the
// recovery-phase kill/restart INSIDE the cut, and by a scheduled heal).
// Shared by the full-run path (testPoint), the fork path (armAndDrive)
// and the guided path, so the fault semantics cannot drift between
// them.
func (t *Tester) inject(sysRun cluster.Run, rep *Report, d probe.DynPoint, target sim.NodeID) {
	e := sysRun.Engine()
	if po := t.Partition; po != nil {
		if cluster.Partition(sysRun, []sim.NodeID{target}, po.Mode, po.delay()) {
			rep.Partitioned = true
			if f := lastFault(e); f != nil {
				rep.Injected = f
			}
		}
		if t.Recovery != nil {
			// Partition-aware recovery: the victim also dies inside the
			// cut and restarts into it, exercising rejoin-under-partition.
			if d.Scenario == crashpoint.PreRead {
				e.Shutdown(target)
			} else {
				e.Crash(target)
			}
			t.scheduleRestart(sysRun, rep, target)
		}
		t.scheduleHeal(sysRun, rep)
		return
	}
	if d.Scenario == crashpoint.PreRead {
		// Shutdown hooks run synchronously, so by the time the read
		// proceeds the cluster has fully processed the departure.
		e.Shutdown(target)
	} else {
		e.Crash(target)
	}
	if f := lastFault(e); f != nil {
		rep.Injected = f
	}
	if t.Recovery != nil {
		t.scheduleRestart(sysRun, rep, target)
	}
}

// scheduleRestart arms the recovery-phase machinery for one victim: a
// restart after the configured delay, and optionally a second fault
// inside the recovery window. The timers are unbound (not node-bound),
// so they survive the victim's death.
func (t *Tester) scheduleRestart(run cluster.Run, rep *Report, target sim.NodeID) {
	rc := t.Recovery
	e := run.Engine()
	e.After(rc.restartDelay(), func() {
		if !cluster.Restart(run, target) {
			return
		}
		rep.Restarted = append(rep.Restarted, target)
		if rc.SecondFaultDelay <= 0 {
			return
		}
		e.After(rc.SecondFaultDelay, func() {
			if n := e.Node(target); n == nil || !n.Alive() {
				return
			}
			if rc.SecondFaultKind == sim.FaultShutdown {
				e.Shutdown(target)
			} else {
				e.Crash(target)
			}
		})
	})
}

func (t *Tester) chooseTarget(e *sim.Engine, st targetResolver, a probe.Access) (sim.NodeID, bool) {
	if t.RandomTarget {
		alive := e.AliveNodes()
		if len(alive) == 0 {
			return "", false
		}
		return alive[e.Rand().Intn(len(alive))], true
	}
	target, ok := st.QueryAny(a.Values)
	if !ok {
		return "", false
	}
	if n := e.Node(target); n == nil || !n.Alive() {
		return "", false
	}
	return target, true
}

func lastFault(e *sim.Engine) *sim.FaultRecord {
	fs := e.Faults()
	if len(fs) == 0 {
		return nil
	}
	f := fs[len(fs)-1]
	return &f
}

// newUnhandled returns unhandled exception signatures absent from the
// baseline census, sorted.
func (t *Tester) newUnhandled(e *sim.Engine) []string {
	return NewUnhandled(t.Baseline, e)
}

// NewUnhandled returns the unhandled exception signatures of a run that
// never appeared in fault-free baseline runs — the "uncommon exceptions
// in the logs" oracle of §3.2.2. Census membership is decided on
// normalized signatures (so a baseline exception that embeds a port or
// a timestamp still masks its reoccurrence under a different value),
// but the returned strings stay raw: reports and tables show what the
// system actually logged.
func NewUnhandled(b Baseline, e *sim.Engine) []string {
	return NewUnhandledSignatures(b, e.Exceptions())
}

// NewUnhandledSignatures is NewUnhandled over an exception list captured
// earlier — a snapshot plan stores the reference run's exceptions so
// NotHit reports can be synthesized against any tester's baseline.
func NewUnhandledSignatures(b Baseline, exceptions []sim.Exception) []string {
	seen := map[string]bool{}
	var out []string
	for _, ex := range exceptions {
		key := triage.NormalizeException(ex.Signature)
		if ex.Handled || b.Exceptions[key] || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, ex.Signature)
	}
	sort.Strings(out)
	return out
}

func (t *Tester) classify(fired, resolvedMiss bool, run cluster.Run, res sim.RunResult, newEx []string, timeoutFactor int) Outcome {
	if res.Exhausted {
		// The step budget ran out: the model livelocked. That is a
		// harness problem whether or not the injection fired.
		return HarnessError
	}
	if !fired {
		return NotHit
	}
	var o Outcome
	switch {
	case t.Partition != nil:
		o = EvaluatePartition(t.Baseline, run, res, newEx, timeoutFactor, t.Recovery != nil)
	case t.Recovery != nil:
		o = EvaluateRecovery(t.Baseline, run, res, newEx, timeoutFactor)
	default:
		o = Evaluate(t.Baseline, run, res, newEx, timeoutFactor)
	}
	if o == OK && resolvedMiss {
		return Unresolved
	}
	return o
}

// Evaluate applies the §3.2.2 oracle to a finished run: job failure,
// hang, uncommon exception, or a §4.1.3 timeout issue. A run that
// exhausted its step budget is a HarnessError, not a verdict about the
// system.
func Evaluate(b Baseline, run cluster.Run, res sim.RunResult, newEx []string, timeoutFactor int) Outcome {
	if timeoutFactor <= 0 {
		timeoutFactor = 4
	}
	if res.Exhausted {
		return HarnessError
	}
	if run.Status() == cluster.Failed {
		return JobFailure
	}
	if run.Status() == cluster.Running {
		return Hang
	}
	if len(newEx) > 0 {
		return UncommonException
	}
	if b.Duration > 0 && res.End > b.Duration*sim.Time(timeoutFactor) {
		return TimeoutIssue
	}
	return OK
}

// EvaluateRecovery extends the §3.2.2 oracle with the recovery
// conditions of a restart campaign. DuplicateIncarnation is checked
// before the base oracle: a cluster confused by two incarnations of one
// node usually *also* hangs or fails, and the duplicate is the cause,
// not the symptom. The remaining recovery oracles (NeverRejoined,
// RejoinNoWork) only upgrade otherwise-clean runs — a job failure or a
// hang is already the stronger verdict.
func EvaluateRecovery(b Baseline, run cluster.Run, res sim.RunResult, newEx []string, timeoutFactor int) Outcome {
	rr, ok := run.(cluster.RecoveryReporter)
	if !ok {
		return Evaluate(b, run, res, newEx, timeoutFactor)
	}
	if res.Exhausted {
		return HarnessError
	}
	restarted := rr.RestartedNodes()
	for _, id := range restarted {
		if ri, ok := rr.Recovery(id); ok && ri.DuplicateIncarnation {
			return DuplicateIncarnation
		}
	}
	o := Evaluate(b, run, res, newEx, timeoutFactor)
	if o != OK && o != TimeoutIssue {
		return o
	}
	for _, id := range restarted {
		if ri, ok := rr.Recovery(id); ok && !ri.Rejoined {
			return NeverRejoined
		}
	}
	for _, id := range restarted {
		if ri, ok := rr.Recovery(id); ok && !ri.WorkAssigned {
			return RejoinNoWork
		}
	}
	return o
}

// Campaign tests every dynamic point and returns the reports, indexed by
// point position. The points are first rendered as wire jobs (Jobs) and
// then driven through Execute — the same executor a fleet worker runs —
// so the in-process loop and the distributed path cannot drift. Jobs
// fan out across the Tester's worker pool; each run is independent and
// deterministically seeded, so the reports — and everything aggregated
// from them — are byte-identical for any worker count, including the
// sequential Workers=1 special case.
//
// The campaign is panic-isolated: a system model that panics mid-run
// produces a HarnessError report for that point instead of taking the
// whole campaign down. With CheckpointPath set it is also resumable;
// the checkpoint lines hold wire results, the same encoding the fleet
// coordinator's per-shard checkpoints use. With StallTimeout set, a
// run exceeding the wall-clock budget is abandoned and reported as a
// HarnessError naming its point ordinal and scenario.
func (t *Tester) Campaign(points []probe.DynPoint) []Report {
	results := t.RunJobs(t.Jobs(points))
	reports := make([]Report, len(results))
	for i, res := range results {
		reports[i] = ResultReport(res)
	}
	t.recordResults(results)
	return reports
}

// RunJobs is the in-process campaign loop over wire jobs: the worker
// pool drives Execute on each job, in run order, with the Tester's
// panic isolation, stall watchdog, checkpointing and sink wiring.
// Recording is the caller's business (Campaign records; the fleet
// coordinator records centrally).
func (t *Tester) RunJobs(jobs []fleet.Job) []fleet.Result {
	bugs := 0 // guarded by the campaign completion lock (Annotate contract)
	return campaign.Run(len(jobs), campaign.Options[fleet.Result]{
		Workers: t.Workers,
		Recover: func(i int, v any) fleet.Result {
			return ResultOf(jobs[i], t.panicReport(i, DynPointOf(jobs[i]), jobs[i].Scenario, v))
		},
		StallTimeout: t.StallTimeout,
		OnStall: func(i int) fleet.Result {
			return ResultOf(jobs[i], t.stallReport(i, DynPointOf(jobs[i]), jobs[i].Scenario))
		},
		Checkpoint: t.Config.Checkpoint(),
		Sink:       t.Sink,
		Scope:      t.scope(),
		Annotate: func(ev *obs.Event, i int, res fleet.Result) {
			if res.Failing {
				bugs++
			}
			ev.Bugs = bugs
			ev.Crash = DynPointOf(res.Job).Key()
			ev.Outcome = res.Outcome
			ev.Sim = res.Duration
			ev.Target = res.Target
			if res.Fault != nil {
				ev.Fault = res.Fault.Kind
			}
		},
	}, func(i int) fleet.Result { return t.Execute(jobs[i]) })
}

// record delivers the campaign's reports to the configured triage
// recorder. Delivery happens after the campaign, in run order — not
// from the completion-order Annotate hook — so repeat campaigns append
// to a store in identical order, and runs restored from a resumed
// checkpoint are recorded too.
func (t *Tester) record(reports []Report) {
	rec := t.Config.Recorder
	if rec == nil {
		return
	}
	sc := t.scope()
	for i, rep := range reports {
		rec.Record(RunRecordOf(sc.System, sc.Campaign, i, t.Seed, t.Scale, rep))
	}
}

// recordResults is record over wire results: each result flattens
// itself (fleet.Result.RunRecord), which agrees field-for-field with
// RunRecordOf over the report it came from.
func (t *Tester) recordResults(results []fleet.Result) {
	rec := t.Config.Recorder
	if rec == nil {
		return
	}
	for _, res := range results {
		rec.Record(res.RunRecord())
	}
}

// panicReport turns a recovered model panic into a HarnessError report.
// The reason names the campaign ordinal and the injection scenario of
// the panicking run, so a panic surfacing from a many-point campaign is
// attributable without replaying the whole campaign under a debugger.
func (t *Tester) panicReport(run int, d probe.DynPoint, scenario string, v any) Report {
	return Report{
		Dyn:     d,
		Outcome: HarnessError,
		Reason:  fmt.Sprintf("panic in system model (point %d, %s): %v", run, scenario, v),
	}
}

// Summary aggregates a campaign for reporting.
type Summary struct {
	Tested int
	// Bugs counts reports with a bug outcome — the raw run count, kept
	// for paper-table parity. Multiple runs tripping the same underlying
	// defect each count once here.
	Bugs int
	// DistinctBugs deduplicates Bugs through triage signatures (crash
	// point + fault + verdict + normalized exception + bounded stack),
	// collapsing repeat reproductions of one defect — the number a
	// triage pass over the same reports would produce.
	DistinctBugs  int
	TimeoutIssues int
	NotHit        int
	// HarnessErrors counts runs the harness had to abort (model panic,
	// exhausted step budget, stalled worker) — not system bugs, but not
	// silently droppable either.
	HarnessErrors int
	// Restarts counts runs in which at least one node was restarted.
	Restarts int
	// Partitions counts runs that opened a network cut, Heals the subset
	// whose cut closed before the run ended, and Guided the runs whose
	// injection fired at a consistency-violation ordinal.
	Partitions int
	Heals      int
	Guided     int
	ByOutcome  map[Outcome]int
	// WitnessedBugs are the distinct seeded-bug IDs attributed across
	// bug reports, sorted.
	WitnessedBugs []string
}

// Summarize aggregates reports.
func Summarize(reports []Report) Summary {
	s := Summary{ByOutcome: make(map[Outcome]int)}
	wits := map[string]bool{}
	// Bug reports are clustered through the triage index so
	// DistinctBugs matches what a cttriage pass over the same reports
	// would count; system/campaign/seed are constant within one summary,
	// so they contribute nothing to the identities.
	ix := triage.NewIndex()
	for i, r := range reports {
		s.Tested++
		s.ByOutcome[r.Outcome]++
		if len(r.Restarted) > 0 {
			s.Restarts++
		}
		if r.Partitioned {
			s.Partitions++
			if r.Healed {
				s.Heals++
			}
		}
		if r.Guided {
			s.Guided++
		}
		switch {
		case r.Outcome.IsBug():
			s.Bugs++
			ix.Add(triage.FromRunRecord(RunRecordOf("", "", i, 0, 0, r)))
			for _, w := range r.Witnesses {
				wits[w] = true
			}
		case r.Outcome == TimeoutIssue:
			s.TimeoutIssues++
		case r.Outcome == NotHit:
			s.NotHit++
		case r.Outcome == HarnessError:
			s.HarnessErrors++
		}
	}
	s.DistinctBugs = ix.DistinctBugs()
	for w := range wits {
		s.WitnessedBugs = append(s.WitnessedBugs, w)
	}
	sort.Strings(s.WitnessedBugs)
	return s
}
