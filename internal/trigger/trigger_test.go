package trigger

import (
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/systems/cluster"
	"repro/internal/systems/toysys"
)

func TestOutcomeStringsAndSeverity(t *testing.T) {
	cases := map[Outcome]string{
		NotHit: "not-hit", Unresolved: "unresolved", OK: "ok",
		TimeoutIssue: "timeout-issue", UncommonException: "uncommon-exception",
		Hang: "hang", JobFailure: "job-failure",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
	for _, o := range []Outcome{JobFailure, Hang, UncommonException} {
		if !o.IsBug() {
			t.Errorf("%v not classified as bug", o)
		}
	}
	for _, o := range []Outcome{NotHit, Unresolved, OK, TimeoutIssue} {
		if o.IsBug() {
			t.Errorf("%v wrongly classified as bug", o)
		}
	}
}

func TestMeasureBaseline(t *testing.T) {
	r := &toysys.Runner{}
	b := MeasureBaseline(r, 1, 1, 3, 0)
	if b.Runs != 3 {
		t.Errorf("runs = %d", b.Runs)
	}
	if b.Status != cluster.Succeeded {
		t.Errorf("baseline status = %v", b.Status)
	}
	if b.Duration <= 0 || b.Duration > 10*sim.Second {
		t.Errorf("baseline duration = %v", b.Duration)
	}
	// The fault-free toy system throws nothing.
	if len(b.Exceptions) != 0 {
		t.Errorf("baseline exceptions = %v", b.Exceptions)
	}
}

func TestTestPointNotHit(t *testing.T) {
	r := &toysys.Runner{}
	b := MeasureBaseline(r, 1, 1, 1, 0)
	tester := &Tester{Runner: r, Baseline: b, Seed: 1, Scale: 1}
	rep := tester.TestPoint(probe.DynPoint{
		Point:    "toy.Master.handleLost#0", // never executes fault-free
		Scenario: crashpoint.PostWrite,
		Stack:    "toy.Master.handleLost",
	})
	if rep.Outcome != NotHit {
		t.Errorf("outcome = %v, want not-hit", rep.Outcome)
	}
	if rep.Injected != nil {
		t.Error("injection recorded for unexecuted point")
	}
}

func TestTestPointWrongStackNotHit(t *testing.T) {
	r := &toysys.Runner{}
	b := MeasureBaseline(r, 1, 1, 1, 0)
	tester := &Tester{Runner: r, Baseline: b, Seed: 1, Scale: 1}
	rep := tester.TestPoint(probe.DynPoint{
		Point:    toysys.PtCommitGet,
		Scenario: crashpoint.PreRead,
		Stack:    "some.other.Context", // context mismatch
	})
	if rep.Outcome != NotHit {
		t.Errorf("outcome = %v, want not-hit (stack must match)", rep.Outcome)
	}
}

func TestSummarize(t *testing.T) {
	reports := []Report{
		{Outcome: JobFailure, Witnesses: []string{"BUG-1"}},
		{Outcome: Hang, Witnesses: []string{"BUG-2"}},
		{Outcome: OK},
		{Outcome: TimeoutIssue},
		{Outcome: NotHit},
		{Outcome: JobFailure, Witnesses: []string{"BUG-1"}},
	}
	s := Summarize(reports)
	if s.Tested != 6 || s.Bugs != 3 || s.TimeoutIssues != 1 || s.NotHit != 1 {
		t.Errorf("summary = %+v", s)
	}
	if len(s.WitnessedBugs) != 2 || s.WitnessedBugs[0] != "BUG-1" || s.WitnessedBugs[1] != "BUG-2" {
		t.Errorf("witnessed = %v", s.WitnessedBugs)
	}
}

// Summary.Bugs counts failing runs (paper parity); DistinctBugs must
// collapse runs that differ only in volatile tokens — the same
// exception thrown against different hosts or timestamps is one bug.
func TestSummarizeDistinctBugs(t *testing.T) {
	dyn := probe.DynPoint{
		Point:    toysys.PtCommitGet,
		Scenario: crashpoint.PreRead,
		Stack:    "toy.Master.commitPending",
	}
	reports := []Report{
		{Dyn: dyn, Outcome: JobFailure, Target: "node1:7001",
			NewExceptions: []string{"NullPointerException@toy.Master.commitPending: worker node1:7001 missing"}},
		{Dyn: dyn, Outcome: JobFailure, Target: "node2:7002",
			NewExceptions: []string{"NullPointerException@toy.Master.commitPending: worker node2:7002 missing"}},
		{Dyn: dyn, Outcome: Hang, Target: "node1:7001"},
		{Outcome: OK},
	}
	s := Summarize(reports)
	if s.Bugs != 3 {
		t.Errorf("raw bugs = %d, want 3", s.Bugs)
	}
	if s.DistinctBugs != 2 {
		t.Errorf("distinct bugs = %d, want 2 (volatile-token variants must collapse)", s.DistinctBugs)
	}
}

func TestEvaluatePriorities(t *testing.T) {
	b := Baseline{Duration: sim.Second}
	mk := func(status cluster.Status) cluster.Run {
		return fakeRun{status: status}
	}
	if o := Evaluate(b, mk(cluster.Failed), sim.RunResult{End: sim.Second}, nil, 4); o != JobFailure {
		t.Errorf("failed run = %v", o)
	}
	if o := Evaluate(b, mk(cluster.Running), sim.RunResult{End: 20 * sim.Second}, nil, 4); o != Hang {
		t.Errorf("running run = %v", o)
	}
	if o := Evaluate(b, mk(cluster.Succeeded), sim.RunResult{End: sim.Second}, []string{"X"}, 4); o != UncommonException {
		t.Errorf("exception run = %v", o)
	}
	if o := Evaluate(b, mk(cluster.Succeeded), sim.RunResult{End: 10 * sim.Second}, nil, 4); o != TimeoutIssue {
		t.Errorf("slow run = %v", o)
	}
	if o := Evaluate(b, mk(cluster.Succeeded), sim.RunResult{End: 2 * sim.Second}, nil, 4); o != OK {
		t.Errorf("clean run = %v", o)
	}
}

type fakeRun struct{ status cluster.Status }

func (f fakeRun) Engine() *sim.Engine    { return sim.NewEngine(0) }
func (f fakeRun) Start()                 {}
func (f fakeRun) Status() cluster.Status { return f.status }
func (f fakeRun) FailureReason() string  { return "" }
func (f fakeRun) Witnesses() []string    { return nil }

func TestNewUnhandledFiltersBaselineAndHandled(t *testing.T) {
	e := sim.NewEngine(1)
	n := e.AddNode("n", 1)
	e.Throw(n.ID, "Known@x", "", false)
	e.Throw(n.ID, "Handled@y", "", true)
	e.Throw(n.ID, "Fresh@z", "", false)
	e.Throw(n.ID, "Fresh@z", "", false) // dup
	b := Baseline{Exceptions: map[string]bool{"Known@x": true}}
	got := NewUnhandled(b, e)
	if len(got) != 1 || got[0] != "Fresh@z" {
		t.Errorf("NewUnhandled = %v", got)
	}
}

func TestRandomTargetMode(t *testing.T) {
	r := &toysys.Runner{}
	b := MeasureBaseline(r, 1, 1, 1, 0)
	tester := &Tester{Runner: r, Baseline: b, Seed: 1, Scale: 1, RandomTarget: true}
	rep := tester.TestPoint(probe.DynPoint{
		Point:    toysys.PtCommitGet,
		Scenario: crashpoint.PreRead,
		Stack:    "toy.Master.commitPending",
	})
	// A random victim still injects something; the outcome depends on
	// which node dies, but the report must be well-formed.
	if rep.Outcome == NotHit {
		t.Errorf("random-target point not hit: %+v", rep)
	}
}
