// The trigger's side of the fleet wire contract: planning (Jobs renders
// a campaign's points as wire jobs) and execution (Execute runs one wire
// job to a wire result). The in-process Campaign loop and the fleet
// worker both funnel through Execute, so there is exactly one execution
// path and a distributed campaign is byte-identical to a local one by
// construction, not by parallel maintenance of two loops.
package trigger

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/crashpoint"
	"repro/internal/fleet"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/triage"
)

// Tester is the trigger's fleet executor.
var _ fleet.Executor = (*Tester)(nil)

// SetSink replaces the Tester's event sink. Fleet workers install a
// span-capturing sink per job so each result ships its phase spans.
func (t *Tester) SetSink(s obs.Sink) { t.Sink = s }

// ParseOutcome inverts Outcome.String. Unknown strings report
// (HarnessError, false) so a wire peer from a newer build degrades to a
// visible harness problem instead of a silent misclassification.
func ParseOutcome(s string) (Outcome, bool) {
	for i, name := range outcomeNames {
		if name == s {
			return Outcome(i), true
		}
	}
	return HarnessError, false
}

// Jobs renders the planning half of a campaign: one wire job per
// dynamic point, in run order, carrying the full injection identity
// (the crashpoint.Injection string round-trip) so any worker holding
// the campaign's Spec can execute them.
func (t *Tester) Jobs(points []probe.DynPoint) []fleet.Job {
	sc := t.scope()
	jobs := make([]fleet.Job, len(points))
	for i, d := range points {
		jobs[i] = fleet.Job{
			System:   sc.System,
			Campaign: sc.Campaign,
			Run:      i,
			Seed:     t.Seed,
			Scale:    t.Scale,
			Point:    string(d.Point),
			Scenario: crashpoint.Injection{Scenario: d.Scenario, Partition: t.Partition != nil}.String(),
			Stack:    d.Stack,
		}
	}
	return jobs
}

// DynPointOf rebuilds the dynamic crash point a wire job names. The
// round-trip is lossless: a DynPoint is exactly (point, scenario,
// stack), all three of which the job carries.
func DynPointOf(j fleet.Job) probe.DynPoint {
	d := probe.DynPoint{Point: ir.PointID(j.Point), Stack: j.Stack}
	if inj, ok := crashpoint.ParseInjection(j.Scenario); ok {
		d.Scenario = inj.Scenario
	}
	return d
}

// Execute runs one wire job to its wire result — the fleet.Executor
// contract. A job whose Scale differs from the Tester's (a retry-wave
// job) executes on a scaled copy, like the single-process retry
// campaign; the copy's stale snapshot plan is ignored by the
// compatibility fence, so such runs take the full path unless the
// caller installed a plan for that scale.
func (t *Tester) Execute(j fleet.Job) fleet.Result {
	rt := t
	if j.Scale > 0 && j.Scale != t.Scale {
		c := *t
		c.Scale = j.Scale
		c.CheckpointPath = ""
		c.Resume = false
		rt = &c
	}
	rep := rt.runPoint(j.Run, DynPointOf(j))
	return ResultOf(j, rep)
}

// ResultOf flattens a report into the wire result for its job,
// precomputing the triage signature of failing runs so the coordinator
// steers without recomputing it. ResultReport inverts it.
func ResultOf(j fleet.Job, rep Report) fleet.Result {
	res := fleet.Result{
		Job:           j,
		Outcome:       rep.Outcome.String(),
		Failing:       rep.Outcome.IsBug(),
		Target:        string(rep.Target),
		Duration:      rep.Duration,
		Exceptions:    rep.NewExceptions,
		Witnesses:     rep.Witnesses,
		Partitioned:   rep.Partitioned,
		Healed:        rep.Healed,
		Guided:        rep.Guided,
		GuidedOrdinal: rep.GuidedOrdinal,
		Reason:        rep.Reason,
	}
	for _, id := range rep.Restarted {
		res.Restarted = append(res.Restarted, string(id))
	}
	if f := rep.Injected; f != nil {
		res.Fault = &fleet.Fault{Kind: f.Kind.String(), Node: string(f.Node), At: f.At}
	}
	if res.Failing {
		res.Sig = triage.FromRunRecord(res.RunRecord()).Sig
	}
	return res
}

// ResultReport rebuilds the trigger report a wire result flattened, so
// report tables and summaries render identically whether the campaign
// ran in-process or across a fleet.
func ResultReport(res fleet.Result) Report {
	o, _ := ParseOutcome(res.Outcome)
	rep := Report{
		Dyn:           DynPointOf(res.Job),
		Outcome:       o,
		Target:        sim.NodeID(res.Target),
		Injected:      res.Fault.Record(),
		Duration:      res.Duration,
		NewExceptions: res.Exceptions,
		Witnesses:     res.Witnesses,
		Partitioned:   res.Partitioned,
		Healed:        res.Healed,
		Guided:        res.Guided,
		GuidedOrdinal: res.GuidedOrdinal,
		Reason:        res.Reason,
	}
	for _, id := range res.Restarted {
		rep.Restarted = append(rep.Restarted, sim.NodeID(id))
	}
	return rep
}

// RunRecordOf flattens one report into the layer-neutral run record the
// triage recorder persists. The record keeps raw (un-normalized) fields
// — normalization happens inside the triage signature — and everything
// needed to re-execute the run during confirmation: the static point,
// the scenario, the dynamic stack, the seed and the scale. It agrees
// field-for-field with fleet.Result.RunRecord over the same run
// (pinned by test), which is what lets fleet and in-process campaigns
// write byte-identical triage stores.
func RunRecordOf(system, kind string, run int, seed int64, scale int, rep Report) campaign.RunRecord {
	rr := campaign.RunRecord{
		System:   system,
		Campaign: kind,
		Run:      run,
		Seed:     seed,
		Scale:    scale,
		Point:    string(rep.Dyn.Point),
		// The scenario string is the full injection identity: partition
		// runs persist as "pre-read+partition", guided ones with their
		// ordinal ("pre-read+partition@42"), so confirmation can rebuild
		// the exact cluster (crashpoint.ParseInjection inverts it).
		Scenario: crashpoint.Injection{
			Scenario:  rep.Dyn.Scenario,
			Partition: rep.Partitioned,
			Guided:    rep.Guided,
			Ordinal:   rep.GuidedOrdinal,
		}.String(),
		Stack:      rep.Dyn.Stack,
		Target:     string(rep.Target),
		Outcome:    rep.Outcome.String(),
		Failing:    rep.Outcome.IsBug(),
		Exceptions: rep.NewExceptions,
		Witnesses:  rep.Witnesses,
		Reason:     rep.Reason,
		Duration:   rep.Duration,
	}
	if rep.Injected != nil {
		rr.Fault = rep.Injected.Kind.String()
	}
	return rr
}

// stallReport is the OnStall result of a job the watchdog abandoned:
// a HarnessError naming the point ordinal and scenario, so the report
// table says WHICH injection livelocked instead of a bare zero value.
func (t *Tester) stallReport(run int, d probe.DynPoint, scenario string) Report {
	return Report{
		Dyn:     d,
		Outcome: HarnessError,
		Reason: fmt.Sprintf("run stalled past %s (point %d, %s)",
			t.StallTimeout, run, scenario),
	}
}
