package probe

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
)

// TestSkipAccessesFastForwards: with SkipAccesses=N the hook sees
// nothing until the N+1th access, which arrives with its stack rendered
// as usual — the arming mechanism of snapshot-forked injection runs.
func TestSkipAccessesFastForwards(t *testing.T) {
	p := New()
	p.SkipAccesses = 2
	var got []Access
	p.OnAccess = func(a Access) { got = append(got, a) }
	node := sim.NodeID("node1:7001")
	for i, pt := range []string{"A.a#1", "B.b#2", "C.c#3", "D.d#4"} {
		pop := p.Enter(node, "M.handle")
		if i%2 == 0 {
			p.PreRead(node, ir.PointID(pt), "v")
		} else {
			p.PostWrite(node, ir.PointID(pt), "v")
		}
		pop()
	}
	if len(got) != 2 {
		t.Fatalf("hook saw %d accesses, want 2 (skipped 2 of 4)", len(got))
	}
	if string(got[0].Point) != "C.c#3" || string(got[1].Point) != "D.d#4" {
		t.Fatalf("hook saw %q, %q; want the 3rd and 4th accesses", got[0].Point, got[1].Point)
	}
	if got[0].Stack != "M.handle" {
		t.Fatalf("delivered access lost its stack: %q", got[0].Stack)
	}
}

// TestLeanProbeSkipsBookkeeping: lean mode turns Enter into a shared
// no-op and Stack into "", while dispatch still delivers accesses (with
// empty stacks) and values untouched.
func TestLeanProbeSkipsBookkeeping(t *testing.T) {
	p := New()
	p.Lean = true
	node := sim.NodeID("node1:7001")
	pop := p.Enter(node, "M.handle")
	pop() // must be callable
	if s := p.Stack(node); s != "" {
		t.Fatalf("lean Stack() = %q, want empty", s)
	}
	var got []Access
	p.OnAccess = func(a Access) { got = append(got, a) }
	p.Enter(node, "M.handle")
	p.PreRead(node, "A.a#1", "value1", "value2")
	if len(got) != 1 {
		t.Fatalf("lean dispatch delivered %d accesses, want 1", len(got))
	}
	if got[0].Stack != "" {
		t.Fatalf("lean access carries a stack: %q", got[0].Stack)
	}
	if len(got[0].Values) != 2 || got[0].Values[0] != "value1" {
		t.Fatalf("lean access lost values: %v", got[0].Values)
	}
}

// TestSkipCountsOnlyHookedAccesses: dispatches with no hook installed do
// not consume the skip budget, so the reference pass (hook always on)
// and the fork (hook always on) count identically.
func TestSkipCountsOnlyHookedAccesses(t *testing.T) {
	p := New()
	p.SkipAccesses = 1
	node := sim.NodeID("node1:7001")
	p.PreRead(node, "A.a#1", "v") // no hook: not counted
	var got []Access
	p.OnAccess = func(a Access) { got = append(got, a) }
	p.PreRead(node, "B.b#2", "v") // counted, skipped
	p.PreRead(node, "C.c#3", "v") // delivered
	if len(got) != 1 || string(got[0].Point) != "C.c#3" {
		t.Fatalf("got %v, want just C.c#3", got)
	}
}
