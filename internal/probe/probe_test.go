package probe

import (
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/ir"
	"repro/internal/sim"
)

func TestInertWithoutHook(t *testing.T) {
	p := New()
	// Must not panic or record anything.
	p.PreRead("n:1", "C.m#0", "v")
	p.PostWrite("n:1", "C.m#1", "v")
}

func TestStackBounding(t *testing.T) {
	p := New()
	node := sim.NodeID("n:1")
	var pops []func()
	for _, m := range []string{"A.a", "B.b", "C.c", "D.d", "E.e", "F.f", "G.g"} {
		pops = append(pops, p.Enter(node, ir.MethodID(m)))
	}
	// Depth 5, innermost first.
	want := "G.g<F.f<E.e<D.d<C.c"
	if got := p.Stack(node); got != want {
		t.Errorf("stack = %q, want %q", got, want)
	}
	for i := len(pops) - 1; i >= 0; i-- {
		pops[i]()
	}
	if got := p.Stack(node); got != "" {
		t.Errorf("stack after pops = %q", got)
	}
}

func TestAccessCarriesContext(t *testing.T) {
	p := New()
	node := sim.NodeID("n:1")
	var got []Access
	p.OnAccess = func(a Access) { got = append(got, a) }

	pop := p.Enter(node, "Sched.handle")
	pop2 := p.Enter(node, "Sched.completeContainer")
	p.PreRead(node, "Sched.completeContainer#0", "node1:42")
	pop2()
	p.PostWrite(node, "Sched.handle#3", "container_7", "node1:42")
	pop()

	if len(got) != 2 {
		t.Fatalf("accesses = %d", len(got))
	}
	a := got[0]
	if a.Scenario != crashpoint.PreRead || a.Point != "Sched.completeContainer#0" {
		t.Errorf("access 0 = %+v", a)
	}
	if a.Stack != "Sched.completeContainer<Sched.handle" {
		t.Errorf("stack = %q", a.Stack)
	}
	if len(a.Values) != 1 || a.Values[0] != "node1:42" {
		t.Errorf("values = %v", a.Values)
	}
	b := got[1]
	if b.Scenario != crashpoint.PostWrite || b.Stack != "Sched.handle" {
		t.Errorf("access 1 = %+v", b)
	}
	if len(b.Values) != 2 {
		t.Errorf("post-write values = %v", b.Values)
	}
}

func TestPerNodeStacksIndependent(t *testing.T) {
	p := New()
	p.Enter("a:1", "A.run")
	p.Enter("b:2", "B.run")
	if p.Stack("a:1") != "A.run" || p.Stack("b:2") != "B.run" {
		t.Error("per-node stacks interfere")
	}
}

func TestDynPointKey(t *testing.T) {
	a := Access{Point: "C.m#0", Scenario: crashpoint.PreRead, Stack: "C.m<C.n"}
	d := a.Dyn()
	if d.Key() != "C.m#0/pre-read@C.m<C.n" {
		t.Errorf("key = %q", d.Key())
	}
	b := Access{Point: "C.m#0", Scenario: crashpoint.PreRead, Stack: "C.m<C.x"}
	if b.Dyn().Key() == d.Key() {
		t.Error("different stacks must yield distinct dynamic points")
	}
}

func TestPopOnEmptyStackSafe(t *testing.T) {
	p := New()
	pop := p.Enter("n:1", "A.a")
	pop()
	pop() // double pop must not panic or underflow
	if p.Stack("n:1") != "" {
		t.Error("stack not empty")
	}
}
