// Package probe is the instrumentation layer of the simulated systems —
// the analogue of the Javassist-inserted RPCs of §3.2.2.
//
// Every candidate crash-point site in a simulated system's Go code calls
// PreRead or PostWrite with the PointID of the corresponding IR
// instruction and the runtime meta-info value(s) being accessed. The
// probe maintains a per-node call stack (pushed/popped with Enter) so
// each access carries a bounded call-string context, exactly like the
// paper's dynamic crash points (<P, Context>, depth 5).
//
// The probe itself is policy-free: a single OnAccess hook observes
// accesses. The profiler installs a recording hook; the trigger installs
// an injection hook armed for exactly one dynamic point per run. With no
// hook installed the probe is inert.
package probe

import (
	"sync"
	"sync/atomic"

	"repro/internal/crashpoint"
	"repro/internal/ir"
	"repro/internal/sim"
)

// StackDepth is the bound on call-string length (the paper uses 5,
// starting from the method of the crash point towards its callers).
const StackDepth = 5

// Access describes one dynamic hit of a candidate crash-point site.
type Access struct {
	Point    ir.PointID
	Scenario crashpoint.Scenario
	// Node is the node executing the access.
	Node sim.NodeID
	// Values are the runtime meta-info values at the site (toString
	// results; for collection reads both the key and, when available,
	// the value — §3.3 "Runtime meta-info values").
	Values []string
	// Stack is the bounded call string, innermost first, e.g.
	// "Scheduler.completeContainer<Scheduler.handle".
	Stack string
}

// Dyn returns the dynamic-point identity of the access.
func (a Access) Dyn() DynPoint {
	return DynPoint{Point: a.Point, Scenario: a.Scenario, Stack: a.Stack}
}

// DynPoint is a dynamic crash point: a static point plus its runtime call
// stack (Definition 1).
type DynPoint struct {
	Point    ir.PointID
	Scenario crashpoint.Scenario
	Stack    string
}

// Key returns a stable string identity.
func (d DynPoint) Key() string {
	return string(d.Point) + "/" + d.Scenario.String() + "@" + d.Stack
}

// Hook observes accesses.
type Hook func(Access)

// Probe tracks per-node call stacks and dispatches accesses to the hook.
//
// Each run owns its own Probe and each simulated run is single-threaded,
// but parallel campaigns execute many runs at once, so the stack map is
// guarded by a mutex: a Probe stays correct even if a system ever drives
// its nodes from multiple goroutines. Set OnAccess before the run
// starts; the hook itself is invoked without the lock held.
type Probe struct {
	OnAccess Hook
	// SkipAccesses, when positive, makes dispatch drop that many leading
	// accesses — counted across every point, in dispatch order — without
	// rendering a call stack or invoking OnAccess. A snapshot-forked
	// injection run knows the dispatch ordinal its armed point first
	// fires at (recorded by the reference pass), so everything before it
	// is skipped at the cost of one counter increment per access.
	// Set before the run starts.
	SkipAccesses uint64
	// Lean disables per-node call-stack bookkeeping: Enter returns a
	// shared no-op and Stack renders "". Runs whose consumers never read
	// rendered stacks — snapshot forks take theirs from the plan's
	// DynPoint, the baselines read none — skip the mutex/append cost of
	// every instrumented method entry. Set before the run starts.
	Lean bool

	seen   atomic.Uint64 // accesses dispatched so far (skip cursor)
	mu     sync.Mutex
	stacks map[sim.NodeID][]ir.MethodID
}

// New returns an inert probe.
func New() *Probe {
	return &Probe{stacks: make(map[sim.NodeID][]ir.MethodID)}
}

// leanPop is the shared no-op returned by Enter in lean mode.
var leanPop = func() {}

// Enter pushes method m on node's call stack and returns the matching
// pop. Use as: defer p.Enter(node, "Class.method")().
func (p *Probe) Enter(node sim.NodeID, m ir.MethodID) func() {
	if p.Lean {
		return leanPop
	}
	p.mu.Lock()
	p.stacks[node] = append(p.stacks[node], m)
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		s := p.stacks[node]
		if len(s) > 0 {
			p.stacks[node] = s[:len(s)-1]
		}
	}
}

// Stack renders the bounded call string for node, innermost frame first.
func (p *Probe) Stack(node sim.NodeID) string {
	if p.Lean {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stacks[node]
	n := len(s)
	if n == 0 {
		return ""
	}
	depth := StackDepth
	if n < depth {
		depth = n
	}
	total := depth - 1 // "<" separators
	for i := n - 1; i >= n-depth; i-- {
		total += len(s[i])
	}
	b := make([]byte, 0, total)
	for i := n - 1; i >= n-depth; i-- {
		if len(b) > 0 {
			b = append(b, '<')
		}
		b = append(b, s[i]...)
	}
	return string(b)
}

// PreRead reports a pre-read site hit, before the read executes. The
// trigger's injection hook runs synchronously here, so a graceful
// shutdown it performs is fully handled before the read proceeds —
// emulating the instrumented "shutdown RPC followed by a wait" (§3.2.2).
func (p *Probe) PreRead(node sim.NodeID, point ir.PointID, values ...string) {
	p.dispatch(node, point, crashpoint.PreRead, values)
}

// PostWrite reports a post-write site hit, just after the write executed.
func (p *Probe) PostWrite(node sim.NodeID, point ir.PointID, values ...string) {
	p.dispatch(node, point, crashpoint.PostWrite, values)
}

// dispatch filters and forwards an access. The values slice is copied
// before it reaches the hook: with no path leaking the parameter, the
// compiler stack-allocates the variadic slice at every PreRead/PostWrite
// call site, so the (frequent) filtered dispatches — inert probes,
// accesses below a fork's skip cursor — allocate nothing, and hooks get
// a slice they may retain.
func (p *Probe) dispatch(node sim.NodeID, point ir.PointID, sc crashpoint.Scenario, values []string) {
	if p.OnAccess == nil {
		return
	}
	if p.seen.Add(1)-1 < p.SkipAccesses {
		return
	}
	vals := make([]string, len(values))
	copy(vals, values)
	p.OnAccess(Access{
		Point:    point,
		Scenario: sc,
		Node:     node,
		Values:   vals,
		Stack:    p.Stack(node),
	})
}
