// Race-focused tests: a parallel campaign executes many simulated runs
// at once, so the probe must stay clean under `go test -race` both when
// every run has its own probe (the campaign shape) and when a single
// probe is driven from several goroutines at once (a system model that
// fans its nodes out).
package probe_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dslog"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/systems/cluster"
	"repro/internal/systems/toysys"
)

// TestConcurrentRunsRace drives four complete simulated runs at once,
// each with its own probe and recording hook — exactly what a parallel
// campaign does.
func TestConcurrentRunsRace(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			pb := probe.New()
			accesses := 0
			pb.OnAccess = func(probe.Access) { accesses++ }
			r := &toysys.Runner{}
			run := r.NewRun(cluster.Config{Seed: seed, Scale: 1, Probe: pb, Logs: dslog.NewRoot()})
			cluster.Drive(run, sim.Hour)
			if run.Status() != cluster.Succeeded {
				t.Errorf("seed %d: status %v", seed, run.Status())
			}
			if accesses == 0 {
				t.Errorf("seed %d: probe observed no accesses", seed)
			}
		}(int64(i + 1))
	}
	wg.Wait()
}

// TestSharedProbeConcurrentNodes hammers one probe from eight
// goroutines, one per node, to exercise the stack-map mutex.
func TestSharedProbeConcurrentNodes(t *testing.T) {
	const nodes, rounds = 8, 200
	pb := probe.New()
	var mu sync.Mutex
	seen := map[sim.NodeID]int{}
	stacks := map[sim.NodeID]string{}
	pb.OnAccess = func(a probe.Access) {
		mu.Lock()
		seen[a.Node]++
		stacks[a.Node] = a.Stack
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		node := sim.NodeID(fmt.Sprintf("node%d:1", n))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pop := pb.Enter(node, "Toy.worker")
				pb.PreRead(node, "toy.Toy.worker#0", "v")
				pop()
			}
		}()
	}
	wg.Wait()
	if len(seen) != nodes {
		t.Fatalf("saw accesses from %d nodes, want %d", len(seen), nodes)
	}
	for node, c := range seen {
		if c != rounds {
			t.Errorf("%s: %d accesses, want %d", node, c, rounds)
		}
		// Stacks are per node, so concurrency on other nodes must not
		// leak into this node's call string.
		if stacks[node] != "Toy.worker" {
			t.Errorf("%s: stack %q, want %q", node, stacks[node], "Toy.worker")
		}
	}
}
