// Package partition implements the consistency-guided half of the
// network-partition fault family: inferring cross-node invariants from
// the logs of fault-free runs and watching a second identical run for
// the first transient violation — the injection window where a cut is
// most likely to expose a split-brain or stale-read bug (the CoFI
// observation grafted onto CrashTuner's meta-info machinery).
//
// Where the stash (internal/stash) maintains ONE global value→node
// graph for target resolution, the Tracker here maintains one graph per
// LOGGING node — node A's view is built only from records node A
// emitted — so the views can disagree, and their disagreements are
// exactly the cross-node inconsistencies of interest:
//
//   - Convergence: every view that knows a meta-info value agrees on
//     the node that owns it.
//   - Symmetry: if A's view knows node B, then B's view knows node A
//     (membership/registration is mutual).
//   - UniqueOwner: a meta-info value is owned by one node for its
//     lifetime; re-association to a different node is a hand-off that
//     briefly has two plausible owners.
//
// The Learner keeps only the kinds that hold on the FINAL state of a
// clean run (transient violations are expected — they are the windows);
// the Monitor then replays the same seed and reports the first
// violation of each surviving kind as it happens, which the trigger
// converts into a guided injection ordinal (see trigger.GuidedPoints).
package partition

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/dslog"
	"repro/internal/ir"
	"repro/internal/logparse"
	"repro/internal/metainfo"
	"repro/internal/sim"
)

// Kind is one inferable cross-node invariant.
type Kind int

// Kinds.
const (
	// Convergence: all views owning a value agree on its owner node.
	Convergence Kind = iota
	// Symmetry: view A knowing node B implies view B knows node A.
	Symmetry
	// UniqueOwner: a value never re-associates to a different node.
	UniqueOwner

	numKinds
)

var kindNames = [...]string{"convergence", "symmetry", "unique-owner"}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind inverts String.
func ParseKind(s string) (Kind, bool) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), true
		}
	}
	return 0, false
}

// AllKinds returns every defined kind, in order.
func AllKinds() []Kind { return []Kind{Convergence, Symmetry, UniqueOwner} }

// Violation is one observed cross-node inconsistency.
type Violation struct {
	Kind Kind
	// Value is the meta-info value involved (empty for Symmetry).
	Value string
	// Observer is the node whose view exposed the violation.
	Observer sim.NodeID
	// Owner is the owner in the observer's view (Convergence), or the
	// new owner (UniqueOwner).
	Owner sim.NodeID
	// Other is the disagreeing party: the conflicting owner in another
	// view (Convergence), the peer whose view is missing the back-edge
	// (Symmetry), or the previous owner (UniqueOwner).
	Other sim.NodeID
}

func (v Violation) String() string {
	switch v.Kind {
	case Symmetry:
		return fmt.Sprintf("symmetry: %s knows %s, %s does not know %s",
			v.Observer, v.Other, v.Other, v.Observer)
	case UniqueOwner:
		return fmt.Sprintf("unique-owner: %q moved %s -> %s (seen by %s)",
			v.Value, v.Other, v.Owner, v.Observer)
	default:
		return fmt.Sprintf("convergence: %q owned by %s (%s) vs %s",
			v.Value, v.Owner, v.Observer, v.Other)
	}
}

// Tracker builds per-logging-node meta-info views from a run's log
// stream. It is the agent half of the consistency checker: attach it to
// the run's log root and it matches every record with the same offline
// patterns the stash uses, keeps the meta-info argument values, and
// feeds them to the view of the node that EMITTED the record.
//
// Like the stash it serializes on a mutex so parallel campaigns stay
// safe; within one simulated run the taps fire on a single goroutine.
type Tracker struct {
	// OnViolation, when set together with Watch, receives the first
	// observed violation of each watched kind (at most one per kind).
	// The hook fires synchronously inside log emission — i.e. at a
	// deterministic point of the run — with the mutex held; it must not
	// call back into the Tracker.
	OnViolation func(Violation)

	mu       sync.Mutex
	analysis *metainfo.Analysis
	session  *logparse.MatchSession
	hosts    []string

	views map[sim.NodeID]*metainfo.Graph
	// order lists view keys in creation order, so every cross-view scan
	// (incremental and final) is deterministic.
	order []sim.NodeID

	// firstOwner records the first node each value was related to,
	// across ALL views — the per-view graphs are first-association-wins
	// and cannot see a hand-off. Keys are raw values; owners canonical
	// node values.
	firstOwner map[string]string

	watch [numKinds]bool
	fired [numKinds]bool
	// events counts incremental violation observations per kind (every
	// occurrence, not first-only; Convergence/Symmetry events can be
	// transient and are not what Learn judges).
	events [numKinds]int

	fwd []string
	// Instances counts records seen; Kept counts values forwarded into
	// views.
	Instances int
	Kept      int
}

// NewTracker returns a tracker for one run. The matcher and analysis
// are the same offline artifacts the stash consumes; hosts seed every
// per-node view's node-value recognizer.
func NewTracker(hosts []string, matcher *logparse.Matcher, analysis *metainfo.Analysis) *Tracker {
	return &Tracker{
		analysis:   analysis,
		session:    matcher.NewSession(),
		hosts:      hosts,
		views:      make(map[sim.NodeID]*metainfo.Graph),
		firstOwner: make(map[string]string),
	}
}

// Watch enables incremental checking of the given kinds; the first
// violation of each fires OnViolation. Call before the run starts.
func (t *Tracker) Watch(kinds ...Kind) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range kinds {
		if k >= 0 && k < numKinds {
			t.watch[k] = true
		}
	}
}

// Attach subscribes the tracker to a run's log root.
func (t *Tracker) Attach(root *dslog.Root) {
	root.AddTap(t.Process)
}

// Views returns the number of per-node views built so far.
func (t *Tracker) Views() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.views)
}

// Events returns how many incremental violation observations of kind k
// occurred (transient or not).
func (t *Tracker) Events(k Kind) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if k < 0 || k >= numKinds {
		return 0
	}
	return t.events[k]
}

// viewOf returns (creating if needed) the view of one logging node.
func (t *Tracker) viewOf(id sim.NodeID) *metainfo.Graph {
	if v, ok := t.views[id]; ok {
		return v
	}
	v := metainfo.NewGraph(t.hosts)
	t.views[id] = v
	t.order = append(t.order, id)
	return v
}

// host strips the :port suffix of a node value.
func host(v string) string {
	if i := strings.IndexByte(v, ':'); i >= 0 {
		return v[:i]
	}
	return v
}

// sameNode compares two node values modulo port canonicalization: one
// view may know a node as "h1" before any record showed it the full
// "h1:7001".
func sameNode(a, b string) bool {
	return a == b || host(a) == host(b)
}

// Process handles one log record: match, keep the meta-info argument
// values (the stash's filter), feed them to the EMITTING node's view,
// then run the watched incremental checks.
func (t *Tracker) Process(rec dslog.Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Instances++
	m := t.session.Match(rec)
	if m == nil {
		return
	}
	view := t.viewOf(rec.Node)
	vals := t.fwd[:0]
	for i, arg := range m.Pattern.Stmt.Args {
		if i >= len(m.Values) {
			break
		}
		v := m.Values[i]
		if t.keep(view, arg, v) {
			vals = append(vals, v)
		}
	}
	t.fwd = vals[:0]
	if len(vals) == 0 {
		return
	}
	t.Kept += len(vals)

	// Resolve the record's owner node with Observe's own two-scan rule,
	// BEFORE the view mutates, so the global hand-off ledger sees the
	// same owner the view is about to record.
	owner := t.recordOwner(view, vals)
	view.Observe(vals)
	t.account(rec.Node, view, vals, owner)
}

// keep mirrors stash.keep: node-referencing values always pass;
// otherwise the argument's type or linked field must be meta-info.
func (t *Tracker) keep(view *metainfo.Graph, arg ir.LogArg, v string) bool {
	if _, ok := view.NodeValue(v); ok {
		return true
	}
	if t.analysis == nil {
		return false
	}
	if t.analysis.IsMetaType(arg.Type) {
		return true
	}
	return arg.Field != "" && t.analysis.IsMetaField(arg.Field)
}

// recordOwner resolves the node a log instance's values belong to,
// exactly as Graph.Observe will: leftmost direct node reference first,
// then a value already associated in this view.
func (t *Tracker) recordOwner(view *metainfo.Graph, vals []string) string {
	for _, v := range vals {
		if nv, ok := view.NodeValue(v); ok {
			return nv
		}
	}
	for _, v := range vals {
		if n, ok := view.Owner(v); ok {
			return n
		}
	}
	return ""
}

// account updates the cross-view bookkeeping for one processed record
// and runs the watched incremental checks.
func (t *Tracker) account(observer sim.NodeID, view *metainfo.Graph, vals []string, owner string) {
	for _, v := range vals {
		if nv, ok := view.NodeValue(v); ok {
			t.checkSymmetry(observer, nv)
			continue
		}
		if owner == "" {
			continue
		}
		if prev, ok := t.firstOwner[v]; ok {
			if !sameNode(prev, owner) {
				t.events[UniqueOwner]++
				t.report(Violation{
					Kind:     UniqueOwner,
					Value:    v,
					Observer: observer,
					Owner:    sim.NodeID(owner),
					Other:    sim.NodeID(prev),
				})
				// The hand-off is now the fact on the ground: track the
				// new owner so a later third move is one event, not two.
				t.firstOwner[v] = owner
			}
		} else {
			t.firstOwner[v] = owner
		}
		t.checkConvergence(observer, view, v)
	}
}

// checkSymmetry verifies the back-edge for one node value the observer
// just learned (or re-learned).
func (t *Tracker) checkSymmetry(observer sim.NodeID, nv string) {
	if !t.watch[Symmetry] || sameNode(string(observer), nv) {
		return
	}
	peer, ok := t.peerView(nv)
	if ok && peer.HasNode(string(observer)) {
		return
	}
	t.events[Symmetry]++
	t.report(Violation{Kind: Symmetry, Observer: observer, Other: sim.NodeID(nv)})
}

// checkConvergence compares one value's owner in the observer's view
// against every other view that knows it.
func (t *Tracker) checkConvergence(observer sim.NodeID, view *metainfo.Graph, v string) {
	if !t.watch[Convergence] {
		return
	}
	own, ok := view.Owner(v)
	if !ok {
		return
	}
	for _, id := range t.order {
		if id == observer {
			continue
		}
		if other, ok := t.views[id].Owner(v); ok && !sameNode(other, own) {
			t.events[Convergence]++
			t.report(Violation{
				Kind:     Convergence,
				Value:    v,
				Observer: observer,
				Owner:    sim.NodeID(own),
				Other:    sim.NodeID(other),
			})
			return
		}
	}
}

// report fires OnViolation once per watched kind.
func (t *Tracker) report(v Violation) {
	if !t.watch[v.Kind] || t.fired[v.Kind] || t.OnViolation == nil {
		return
	}
	t.fired[v.Kind] = true
	t.OnViolation(v)
}

// Learn judges the FINAL state of a finished clean run and returns the
// kinds that hold — the inferred invariants a Monitor pass should
// watch. Transient Convergence/Symmetry violations during the run do
// not disqualify a kind (they are the injection windows); UniqueOwner
// is inherently an event, so any hand-off observed at any time
// disqualifies it. Kinds with nothing to witness (fewer than two views)
// are dropped rather than vacuously kept.
func (t *Tracker) Learn() []Kind {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Kind
	if len(t.order) >= 2 {
		if len(t.finalViolations(Convergence)) == 0 {
			out = append(out, Convergence)
		}
		if len(t.finalViolations(Symmetry)) == 0 {
			out = append(out, Symmetry)
		}
	}
	if t.events[UniqueOwner] == 0 && len(t.firstOwner) > 0 {
		out = append(out, UniqueOwner)
	}
	return out
}

// FinalViolations returns the violations of one kind present in the
// final state (always empty for the event-kind UniqueOwner; read
// Events for it). Exposed for oracle-side end-of-run checks and tests.
func (t *Tracker) FinalViolations(k Kind) []Violation {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finalViolations(k)
}

func (t *Tracker) finalViolations(k Kind) []Violation {
	var out []Violation
	switch k {
	case Convergence:
		// Deterministic sweep: observer views in creation order, each
		// value checked against later views only (each conflicting pair
		// reported once).
		for i, a := range t.order {
			va := t.views[a]
			for _, v := range va.Values() {
				own, ok := va.Owner(v)
				if !ok {
					continue
				}
				for _, b := range t.order[i+1:] {
					if other, ok := t.views[b].Owner(v); ok && !sameNode(other, own) {
						out = append(out, Violation{
							Kind: Convergence, Value: v,
							Observer: a, Owner: sim.NodeID(own), Other: sim.NodeID(other),
						})
						break
					}
				}
			}
		}
	case Symmetry:
		for _, a := range t.order {
			for _, nv := range t.views[a].Nodes() {
				if sameNode(string(a), nv) {
					continue
				}
				peer, ok := t.peerView(nv)
				if ok && peer.HasNode(string(a)) {
					continue
				}
				out = append(out, Violation{Kind: Symmetry, Observer: a, Other: sim.NodeID(nv)})
			}
		}
	}
	return out
}

// peerView finds the view of the node a node value names, matching on
// the host part (a view key may be "h1:7001" while another view knows
// the node only as "h1").
func (t *Tracker) peerView(nv string) (*metainfo.Graph, bool) {
	if v, ok := t.views[sim.NodeID(nv)]; ok {
		return v, true
	}
	h := host(nv)
	for _, id := range t.order {
		if host(string(id)) == h {
			return t.views[id], true
		}
	}
	return nil, false
}
