package partition

import (
	"testing"

	"repro/internal/dslog"
	"repro/internal/ir"
	"repro/internal/logparse"
	"repro/internal/metainfo"
	"repro/internal/sim"
)

var hosts = []string{"node0", "node1", "node2"}

// program mirrors the stash tests' shape: a registration statement, an
// assignment statement and a noise statement.
func program() *ir.Program {
	p := ir.NewProgram("pt")
	p.AddClass(&ir.Class{Name: "p.NodeId"})
	p.AddClass(&ir.Class{Name: "p.ContainerId"})
	p.AddClass(&ir.Class{Name: "p.RM", Methods: []*ir.Method{{Name: "run", Instrs: []*ir.Instr{
		{Op: ir.OpLog, Log: &ir.LogStmt{Level: "info",
			Segments: []string{"registered node ", ""},
			Args:     []ir.LogArg{{Name: "nodeId", Type: "p.NodeId"}}}},
		{Op: ir.OpLog, Log: &ir.LogStmt{Level: "info",
			Segments: []string{"assigned ", " to node ", ""},
			Args: []ir.LogArg{
				{Name: "containerId", Type: "p.ContainerId"},
				{Name: "nodeId", Type: "p.NodeId"},
			}}},
		{Op: ir.OpLog, Log: &ir.LogStmt{Level: "info",
			Segments: []string{"config value ", ""},
			Args:     []ir.LogArg{{Name: "v", Type: "java.lang.String"}}}},
		{Op: ir.OpReturn},
	}}}})
	return p.Build()
}

func newTracker(t *testing.T) (*Tracker, *dslog.Root, *sim.Engine) {
	t.Helper()
	p := program()
	matcher := logparse.NewMatcher(logparse.ExtractPatterns(p))
	offline := []dslog.Record{
		{Text: "registered node node1:42"},
		{Text: "assigned container_9 to node node1:42"},
	}
	var matches []*logparse.Match
	session := matcher.NewSession()
	for _, r := range offline {
		if m := session.Match(r); m != nil {
			matches = append(matches, m)
		}
	}
	analysis := metainfo.Infer(p, matches, hosts)
	tr := NewTracker(hosts, matcher, analysis)
	e := sim.NewEngine(1)
	root := dslog.NewRoot()
	tr.Attach(root)
	return tr, root, e
}

func TestLearnKeepsInvariantsOfCleanRun(t *testing.T) {
	tr, root, e := newTracker(t)
	a := e.AddNode("node0", 40).ID
	b := e.AddNode("node1", 41).ID
	// Mutual registration plus one stable assignment per view.
	root.Logger(e, a, "RM").Info("registered node node1:41")
	root.Logger(e, b, "RM").Info("registered node node0:40")
	root.Logger(e, a, "RM").Info("assigned container_1 to node node1:41")
	root.Logger(e, b, "RM").Info("assigned container_1 to node node1:41")

	kinds := tr.Learn()
	want := []Kind{Convergence, Symmetry, UniqueOwner}
	if len(kinds) != len(want) {
		t.Fatalf("Learn = %v, want %v", kinds, want)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("Learn = %v, want %v", kinds, want)
		}
	}
	if tr.Views() != 2 {
		t.Fatalf("views = %d, want 2", tr.Views())
	}
}

func TestSymmetryTransientWindowFiresButSurvivesLearn(t *testing.T) {
	tr, root, e := newTracker(t)
	tr.Watch(Symmetry)
	var got []Violation
	tr.OnViolation = func(v Violation) { got = append(got, v) }

	a := e.AddNode("node0", 40).ID
	b := e.AddNode("node1", 41).ID
	// node1 knows node0 before node0 has logged anything: transient
	// asymmetry — the injection window.
	root.Logger(e, b, "RM").Info("registered node node0:40")
	if len(got) != 1 || got[0].Kind != Symmetry || got[0].Observer != b || got[0].Other != "node0:40" {
		t.Fatalf("violations = %+v, want one symmetry from %s about node0:40", got, b)
	}
	// A second asymmetric sighting must not re-fire (once per kind).
	root.Logger(e, b, "RM").Info("registered node node0:40")
	if len(got) != 1 {
		t.Fatalf("re-fired: %+v", got)
	}
	if tr.Events(Symmetry) < 2 {
		t.Fatalf("events = %d, want >= 2", tr.Events(Symmetry))
	}
	// The window heals; the final state is symmetric, so Learn keeps it.
	root.Logger(e, a, "RM").Info("registered node node1:41")
	if vs := tr.FinalViolations(Symmetry); len(vs) != 0 {
		t.Fatalf("final symmetry violations = %+v, want none", vs)
	}
	found := false
	for _, k := range tr.Learn() {
		if k == Symmetry {
			found = true
		}
	}
	if !found {
		t.Fatalf("Learn dropped symmetry after the window healed: %v", tr.Learn())
	}
}

func TestConvergenceConflictDisqualifies(t *testing.T) {
	tr, root, e := newTracker(t)
	tr.Watch(Convergence)
	var got []Violation
	tr.OnViolation = func(v Violation) { got = append(got, v) }

	a := e.AddNode("node0", 40).ID
	b := e.AddNode("node1", 41).ID
	root.Logger(e, a, "RM").Info("assigned container_1 to node node1:41")
	root.Logger(e, b, "RM").Info("assigned container_1 to node node2:42")
	if len(got) != 1 || got[0].Kind != Convergence || got[0].Value != "container_1" {
		t.Fatalf("violations = %+v, want one convergence on container_1", got)
	}
	if vs := tr.FinalViolations(Convergence); len(vs) != 1 {
		t.Fatalf("final convergence violations = %+v, want 1", vs)
	}
	for _, k := range tr.Learn() {
		if k == Convergence {
			t.Fatalf("Learn kept convergence despite a final conflict: %v", tr.Learn())
		}
	}
}

func TestUniqueOwnerHandOffDisqualifies(t *testing.T) {
	tr, root, e := newTracker(t)
	tr.Watch(UniqueOwner)
	var got []Violation
	tr.OnViolation = func(v Violation) { got = append(got, v) }

	a := e.AddNode("node0", 40).ID
	// Same view re-associates the container: the per-view graph keeps
	// the first owner (first-association-wins) but the global ledger
	// must see the hand-off.
	root.Logger(e, a, "RM").Info("assigned container_1 to node node1:41")
	root.Logger(e, a, "RM").Info("assigned container_1 to node node2:42")
	if len(got) != 1 || got[0].Kind != UniqueOwner ||
		got[0].Other != "node1:41" || got[0].Owner != "node2:42" {
		t.Fatalf("violations = %+v, want one unique-owner node1->node2", got)
	}
	for _, k := range tr.Learn() {
		if k == UniqueOwner {
			t.Fatalf("Learn kept unique-owner despite a hand-off: %v", tr.Learn())
		}
	}
	// A third move is a fresh event against the new owner.
	root.Logger(e, a, "RM").Info("assigned container_1 to node node1:41")
	if tr.Events(UniqueOwner) != 2 {
		t.Fatalf("events = %d, want 2", tr.Events(UniqueOwner))
	}
}

func TestPortCanonicalizationDoesNotFalsePositive(t *testing.T) {
	tr, root, e := newTracker(t)
	// Symmetry is deliberately unwatched: the first cross-node sighting
	// always precedes the peer's view and would fire by design.
	tr.Watch(Convergence, UniqueOwner)
	fired := 0
	tr.OnViolation = func(Violation) { fired++ }

	a := e.AddNode("node0", 40).ID
	b := e.AddNode("node1", 41).ID
	// One view knows the owner as bare "node1", the other as full
	// "node1:41": same node, no conflict.
	root.Logger(e, b, "RM").Info("registered node node0:40")
	root.Logger(e, a, "RM").Info("assigned container_1 to node node1")
	root.Logger(e, b, "RM").Info("assigned container_1 to node node1:41")
	// Symmetry about node1:41 seen from node0's view must find node1's
	// view by host even though the view key carries the port.
	root.Logger(e, a, "RM").Info("registered node node1:41")
	if fired != 0 {
		t.Fatalf("fired %d violations on canonicalization-only differences", fired)
	}
	if vs := tr.FinalViolations(Convergence); len(vs) != 0 {
		t.Fatalf("final convergence = %+v", vs)
	}
	if vs := tr.FinalViolations(Symmetry); len(vs) != 0 {
		t.Fatalf("final symmetry = %+v", vs)
	}
}

func TestLearnDropsVacuousKinds(t *testing.T) {
	tr, root, e := newTracker(t)
	// A single logging node: cross-view kinds have nothing to witness,
	// and with no associations unique-owner is vacuous too.
	a := e.AddNode("node0", 40).ID
	root.Logger(e, a, "RM").Info("config value tuning-knob")
	if kinds := tr.Learn(); len(kinds) != 0 {
		t.Fatalf("Learn = %v, want none (vacuous)", kinds)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v,%v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("nope"); ok {
		t.Fatal("ParseKind accepted garbage")
	}
}
