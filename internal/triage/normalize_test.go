package triage

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// TestNormalizeTextAdversarial drives the normalizer over the token
// shapes real system logs embed: host:port, IPv4/IPv6 addresses,
// timestamps, hex ids, durations, counters — plus the structural
// digits it must NOT touch.
func TestNormalizeTextAdversarial(t *testing.T) {
	cases := []struct{ in, want string }{
		// host:port in every spelling the simulated systems produce.
		{"worker node1:7001 not in workers map", "worker <node> not in workers map"},
		{"lost lease from node12:18342", "lost lease from <node>"},
		{"dial node-3.rack2_x:80 failed", "dial <node> failed"},
		{"10.0.0.1:8485 refused", "<node> refused"},
		{"peer 10.20.30.40 flapping", "peer <node> flapping"},
		{"[2001:db8::1]:9866 timed out", "<node> timed out"},
		{"[::1]:53 ok", "<node> ok"},
		// Timestamps, ISO and bare-clock.
		{"at 2019-10-27 renewing", "at <ts> renewing"},
		{"2019-10-27T14:03:22Z lease expired", "<ts> lease expired"},
		{"2019-10-27 14:03:22.518 WARN retry", "<ts> WARN retry"},
		{"2024-01-02T03:04:05+08:00 tick", "<ts> tick"},
		{"elapsed 12:34:56.789 in recovery", "elapsed <ts> in recovery"},
		// Hex identifiers, prefixed and bare, either case.
		{"txid 0xdeadbeef rolled back", "txid <hex> rolled back"},
		{"container deadbeef01 preempted", "container <hex> preempted"},
		{"block 0123abcd4567ef89 corrupt", "block <hex> corrupt"},
		{"epoch DEADBEEF42 bumped", "epoch <hex> bumped"},
		// Durations, including compound and sub-second units.
		{"took 1.500s to fail over", "took <dur> to fail over"},
		{"deadline 200ms exceeded", "deadline <dur> exceeded"},
		{"gc pause 35µs", "gc pause <dur>"},
		{"uptime 1h2m3s before crash", "uptime <dur> before crash"},
		// Standalone numbers: incarnation counts, sim steps, sizes.
		{"incarnation 3 superseded by 4", "incarnation <n> superseded by <n>"},
		{"step 184321 budget exhausted", "step <n> budget exhausted"},
		{"retry 2 of 10", "retry <n> of <n>"},
		// Structural digits stay: identifiers, class names, node names
		// without ports.
		{"Http2Exception in frame writer", "Http2Exception in frame writer"},
		{"node1 deregistered", "node1 deregistered"},
		{"attempt_task_3_2 rejected", "attempt_task_<n>_<n> rejected"},
		{"NullPointerException@toy.Master.commitPending", "NullPointerException@toy.Master.commitPending"},
		// Mixed: several volatile tokens in one line.
		{
			"2019-10-27T14:03:22Z node7:9000 lost block 0xdeadbeef after 1.500s (attempt 3)",
			"<ts> <node> lost block <hex> after <dur> (attempt <n>)",
		},
		// URLs: scheme colon is not a port.
		{"fetch http://node1:7001/status failed", "fetch http://<node>/status failed"},
		// Degenerate inputs.
		{"", ""},
		{"no digits at all", "no digits at all"},
		{"::::", "::::"},
		{"[unclosed", "[unclosed"},
		{"[]", "[]"},
	}
	for _, tc := range cases {
		if got := NormalizeText(tc.in); got != tc.want {
			t.Errorf("NormalizeText(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestNormalizeTextIdempotent: normalizing twice must equal normalizing
// once — placeholders contain no volatile shapes.
func TestNormalizeTextIdempotent(t *testing.T) {
	inputs := []string{
		"worker node1:7001 not in workers map",
		"2019-10-27T14:03:22Z node7:9000 lost block 0xdeadbeef after 1.500s (attempt 3)",
		"[2001:db8::1]:9866 <node> already normalized 42",
		"step 184321 <n> <ts> <hex> <dur>",
	}
	for _, in := range inputs {
		once := NormalizeText(in)
		twice := NormalizeText(once)
		if once != twice {
			t.Errorf("not idempotent: %q -> %q -> %q", in, once, twice)
		}
	}
}

// TestNormalizeStability: the properties the dedup keys rely on — runs
// of the same bug from different seeds/hosts normalize identically.
func TestNormalizeStability(t *testing.T) {
	a := NormalizeText("worker node1:7001 not in workers map")
	b := NormalizeText("worker node4:7004 not in workers map")
	if a != b {
		t.Errorf("same bug text from different victims diverged: %q vs %q", a, b)
	}
	c := NormalizeText("2024-01-01T00:00:01Z lease lost on 10.0.0.1:50010 after 1.2s")
	d := NormalizeText("2025-12-31T23:59:59Z lease lost on 10.9.8.7:50075 after 900ms")
	if c != d {
		t.Errorf("same bug text across timestamps/hosts diverged: %q vs %q", c, d)
	}
}

// FuzzNormalizeText asserts the two safety properties over arbitrary
// input: never panic, and idempotence (NormalizeText is a projection).
func FuzzNormalizeText(f *testing.F) {
	seeds := []string{
		"",
		"worker node1:7001 not in workers map",
		"2019-10-27T14:03:22.518Z",
		"[2001:db8::1]:9866",
		"0xdeadbeef deadbeef01 0123abcd4567",
		"1h2m3.5s 200ms 35µs",
		"::: [ ] 1: :1 1:2 12345:67890123",
		"<node> <ts> <hex> <dur> <n>",
		"\x00\xff\xc2 2¿019-13-99T99:99:99",
		strings.Repeat("1.2.3.4:5 ", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		once := NormalizeText(s)
		twice := NormalizeText(once)
		if once != twice {
			t.Fatalf("not idempotent: %q -> %q -> %q", s, once, twice)
		}
		if utf8.ValidString(s) && !utf8.ValidString(once) {
			t.Fatalf("valid UTF-8 input %q normalized to invalid UTF-8 %q", s, once)
		}
	})
}
