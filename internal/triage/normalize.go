// Package triage turns raw fault-injection run reports into a
// persistent, deduplicated bug database — the automation of the manual
// step behind the paper's headline numbers (§6, Tables 8–10): collapsing
// thousands of failing runs into distinct bugs and separating them from
// flaky noise.
//
// The package is layered below the trigger: it depends only on the
// campaign engine and the observability layer, so the trigger, the
// baselines and the core pipeline can all feed it through
// campaign.Config.Recorder without an import cycle.
//
//   - normalize.go: the volatile-token normalizer. Exception signatures,
//     failure reasons and stack frames pass through it so the same bug
//     hashes identically across seeds, worker counts and campaigns.
//   - signature.go: the canonical bug signature (static crash point +
//     fault kind + oracle verdict + normalized exception + bounded stack
//     hash).
//   - record.go / store.go: one JSONL record per failing run, in an
//     append-only store with fsync'd batches and torn-tail healing.
//   - index.go: the in-memory index — load/merge of store files, exact
//     signature clustering with a nearest-cluster fallback, ranking.
//   - confirm.go: the flaky-run confirmation pass (CONFIRMED / FLAKY /
//     UNREPRODUCED).
//   - suppress.go: the known-issue suppression list.
package triage

import "strings"

// Placeholders substituted for volatile tokens. None of them contains a
// digit or a colon, so normalization is idempotent: a normalized string
// passes through NormalizeText unchanged.
const (
	phNode = "<node>" // host:port, ip:port, [v6]:port
	phTS   = "<ts>"   // dates, clocks, zones
	phHex  = "<hex>"  // long hexadecimal identifiers
	phDur  = "<dur>"  // durations ("1.500s", "200ms", "1h2m")
	phNum  = "<n>"    // standalone integers (ids, counters, steps)
)

// NormalizeText canonicalizes free-form log/exception text by replacing
// volatile tokens — host:port values, timestamps, hexadecimal ids,
// durations, standalone numbers — with fixed placeholders. Structural
// digits embedded in identifiers ("Http2Exception", "node1" without a
// port) are preserved: a digit run is only rewritten when it is not
// attached to a letter. The function is deterministic, idempotent and
// never panics on arbitrary input (see FuzzNormalizeText).
func NormalizeText(s string) string {
	// Fast path: text with no digits has no volatile tokens.
	if !hasDigit(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == '[':
			if j, ok := scanBracket6(s, i); ok {
				b.WriteString(phNode)
				i = j
				continue
			}
			b.WriteByte(c)
			i++
		case isDigit(c) && !prevAlnum(s, i):
			if j, ok := scanTimestamp(s, i); ok {
				b.WriteString(phTS)
				i = j
				continue
			}
			if j, ok := scanIPv4(s, i); ok {
				b.WriteString(phNode)
				i = j
				continue
			}
			if j, ok := scanDuration(s, i); ok {
				b.WriteString(phDur)
				i = j
				continue
			}
			if j, ok := scanHexRun(s, i); ok {
				b.WriteString(phHex)
				i = j
				continue
			}
			j := i
			for j < len(s) && isDigit(s[j]) {
				j++
			}
			if j < len(s) && isLetter(s[j]) {
				// Digit run glued to a trailing letter ("2Exception"):
				// structural, keep it.
				b.WriteString(s[i:j])
			} else {
				b.WriteString(phNum)
			}
			i = j
		case isLetter(c) && !prevAlnum(s, i):
			j := i
			for j < len(s) && isTokenChar(s[j]) {
				j++
			}
			if k, ok := scanPort(s, j); ok {
				// word:port — a resolved node address. The whole
				// hostname-shaped token ("node-3.rack2_x") is consumed
				// only on a successful port match.
				b.WriteString(phNode)
				i = k
				continue
			}
			// No port: consume just the leading alnum run, so digit runs
			// after separators inside the token ("attempt_task_3_2")
			// still reach the number rule.
			j = i
			for j < len(s) && isAlnum(s[j]) {
				j++
			}
			run := s[i:j]
			if isHexToken(run) {
				b.WriteString(phHex)
			} else {
				b.WriteString(run)
			}
			i = j
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

// NormalizeException canonicalizes one exception signature. Signatures
// are "Kind@Class.method" strings, but systems interpolate volatile
// detail (ports, ids) into some of them; the text normalizer strips it.
func NormalizeException(sig string) string { return NormalizeText(sig) }

func hasDigit(s string) bool {
	for i := 0; i < len(s); i++ {
		if isDigit(s[i]) {
			return true
		}
	}
	return false
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isAlnum(c byte) bool  { return isDigit(c) || isLetter(c) }

// isTokenChar delimits hostname-shaped tokens ("node1.rack-2_x").
func isTokenChar(c byte) bool {
	return isAlnum(c) || c == '.' || c == '_' || c == '-'
}

// prevAlnum reports whether the byte before position i glues onto an
// identifier (so a digit run there is structural, not volatile).
func prevAlnum(s string, i int) bool {
	return i > 0 && isAlnum(s[i-1])
}

// boundary reports whether position i ends a token.
func boundary(s string, i int) bool {
	return i >= len(s) || !isAlnum(s[i])
}

// scanBracket6 matches "[v6-ish]" optionally followed by ":port".
func scanBracket6(s string, i int) (int, bool) {
	j := i + 1
	colons := 0
	for j < len(s) && s[j] != ']' {
		c := s[j]
		if c == ':' {
			colons++
		} else if !isHexDigit(c) && c != '.' {
			return 0, false
		}
		j++
	}
	if j >= len(s) || colons == 0 {
		return 0, false
	}
	j++ // ']'
	if k, ok := scanPort(s, j); ok {
		return k, true
	}
	return j, true
}

// scanPort matches ":12345" at position i with a boundary after.
func scanPort(s string, i int) (int, bool) {
	if i >= len(s) || s[i] != ':' {
		return 0, false
	}
	j := i + 1
	for j < len(s) && isDigit(s[j]) {
		j++
	}
	if j == i+1 || j-(i+1) > 5 || !boundary(s, j) {
		return 0, false
	}
	return j, true
}

// scanDigits matches exactly n digits.
func scanDigits(s string, i, n int) (int, bool) {
	if i+n > len(s) {
		return 0, false
	}
	for k := 0; k < n; k++ {
		if !isDigit(s[i+k]) {
			return 0, false
		}
	}
	return i + n, true
}

// scanClock matches "3:04:05" or "15:04:05.999" with a boundary after.
func scanClock(s string, i int) (int, bool) {
	j, ok := scanClockCore(s, i)
	if !ok || !boundary(s, j) {
		return 0, false
	}
	return j, true
}

// scanClockCore matches the clock shape without the trailing-boundary
// requirement, so scanTimestamp can attach zone suffixes ("Z").
func scanClockCore(s string, i int) (int, bool) {
	j := i
	for j < len(s) && isDigit(s[j]) {
		j++
	}
	if j == i || j-i > 2 || j >= len(s) || s[j] != ':' {
		return 0, false
	}
	j, ok := scanDigits(s, j+1, 2)
	if !ok || j >= len(s) || s[j] != ':' {
		return 0, false
	}
	j, ok = scanDigits(s, j+1, 2)
	if !ok {
		return 0, false
	}
	if j < len(s) && s[j] == '.' {
		k := j + 1
		for k < len(s) && isDigit(s[k]) {
			k++
		}
		if k > j+1 {
			j = k
		}
	}
	return j, true
}

// scanTimestamp matches ISO dates ("2019-10-27", optionally with a T- or
// space-joined clock and zone suffix) and bare clocks ("12:34:56.789").
func scanTimestamp(s string, i int) (int, bool) {
	if j, ok := scanClock(s, i); ok {
		return j, true
	}
	j, ok := scanDigits(s, i, 4)
	if !ok || j >= len(s) || s[j] != '-' {
		return 0, false
	}
	j, ok = scanDigits(s, j+1, 2)
	if !ok || j >= len(s) || s[j] != '-' {
		return 0, false
	}
	j, ok = scanDigits(s, j+1, 2)
	if !ok {
		return 0, false
	}
	if j < len(s) && (s[j] == 'T' || s[j] == ' ') {
		if k, ok := scanClockCore(s, j+1); ok {
			j = k
			if j < len(s) && s[j] == 'Z' && boundary(s, j+1) {
				j++
			} else if j+5 < len(s) && (s[j] == '+' || s[j] == '-') && s[j+3] == ':' {
				if k, ok := scanDigits(s, j+1, 2); ok {
					if k, ok := scanDigits(s, k+1, 2); ok && boundary(s, k) {
						j = k
					}
				}
			}
		}
	}
	if !boundary(s, j) {
		return 0, false
	}
	return j, true
}

// scanIPv4 matches "1.2.3.4" with an optional ":port".
func scanIPv4(s string, i int) (int, bool) {
	j := i
	for oct := 0; oct < 4; oct++ {
		k := j
		for k < len(s) && isDigit(s[k]) {
			k++
		}
		if k == j || k-j > 3 {
			return 0, false
		}
		j = k
		if oct < 3 {
			if j >= len(s) || s[j] != '.' {
				return 0, false
			}
			j++
		}
	}
	if k, ok := scanPort(s, j); ok {
		return k, true
	}
	if !boundary(s, j) || (j < len(s) && s[j] == '.') {
		return 0, false
	}
	return j, true
}

// durUnit matches a duration unit at i: ns, us, µs, ms, s, m, h.
func durUnit(s string, i int) (int, bool) {
	if i < len(s) {
		switch s[i] {
		case 'n', 'u', 'm':
			if i+1 < len(s) && s[i+1] == 's' {
				return i + 2, true
			}
			if s[i] == 'm' {
				return i + 1, true
			}
		case 's', 'h':
			return i + 1, true
		}
		// "µs" is the two-byte UTF-8 sequence 0xC2 0xB5.
		if s[i] == 0xC2 && i+2 < len(s) && s[i+1] == 0xB5 && s[i+2] == 's' {
			return i + 3, true
		}
	}
	return 0, false
}

// scanDuration matches one or more digit(+fraction)+unit groups with a
// boundary after ("1.500s", "200ms", "1h2m3s").
func scanDuration(s string, i int) (int, bool) {
	j := i
	groups := 0
	for j < len(s) && isDigit(s[j]) {
		k := j
		for k < len(s) && isDigit(s[k]) {
			k++
		}
		if k < len(s) && s[k] == '.' {
			f := k + 1
			for f < len(s) && isDigit(s[f]) {
				f++
			}
			if f > k+1 {
				k = f
			}
		}
		u, ok := durUnit(s, k)
		if !ok {
			return 0, false
		}
		j = u
		groups++
	}
	if groups == 0 || !boundary(s, j) {
		return 0, false
	}
	return j, true
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// scanHexRun matches a digit-led hexadecimal run of >= 8 chars that
// contains at least one hex letter ("0123abcd...", "0xdeadbeef").
func scanHexRun(s string, i int) (int, bool) {
	j := i
	if s[i] == '0' && i+1 < len(s) && (s[i+1] == 'x' || s[i+1] == 'X') {
		k := i + 2
		for k < len(s) && isHexDigit(s[k]) {
			k++
		}
		if k >= i+6 && boundary(s, k) {
			return k, true
		}
		return 0, false
	}
	letters := 0
	for j < len(s) && isHexDigit(s[j]) {
		if !isDigit(s[j]) {
			letters++
		}
		j++
	}
	if j-i >= 8 && letters > 0 && boundary(s, j) {
		return j, true
	}
	return 0, false
}

// isHexToken reports whether a letter-led token is a hexadecimal id
// ("deadbeef01"): >= 8 chars, all hex, at least one digit.
func isHexToken(tok string) bool {
	if len(tok) < 8 {
		return false
	}
	digits := 0
	for i := 0; i < len(tok); i++ {
		if !isHexDigit(tok[i]) {
			return false
		}
		if isDigit(tok[i]) {
			digits++
		}
	}
	return digits > 0
}
