package triage

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// collectSink captures events for assertions.
type collectSink struct {
	mu  sync.Mutex
	evs []obs.Event
}

func (s *collectSink) Emit(ev obs.Event) {
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	s.mu.Unlock()
}

func confirmFixture(t *testing.T) *Cluster {
	t.Helper()
	ix := NewIndex()
	for seed := int64(0); seed < 3; seed++ {
		ix.Add(testRecord("toysys", seed, int(seed)))
	}
	clusters := ix.Clusters()
	if len(clusters) != 1 {
		t.Fatalf("fixture built %d clusters, want 1", len(clusters))
	}
	return clusters[0]
}

// reproducing returns an Execute that reproduces the representative's
// signature when hit(attempt) is true and an innocuous passing record
// otherwise.
func reproducing(hit func(attempt int) bool) Execute {
	return func(rec Record, attempt int) Record {
		out := rec
		out.Campaign = "triage"
		out.Run = attempt
		out.Seed = rec.Seed + int64(attempt)
		if !hit(attempt) {
			out.Outcome = "ok"
			out.Exceptions = nil
		}
		out.Sig = out.Signature().Key()
		return out
	}
}

func TestConfirmLabels(t *testing.T) {
	c := confirmFixture(t)
	cases := []struct {
		name string
		hit  func(int) bool
		want Label
		repr int
	}{
		{"deterministic", func(int) bool { return true }, Confirmed, 5},
		{"majority", func(a int) bool { return a != 0 }, Confirmed, 4},
		{"flaky", func(a int) bool { return a == 0 }, Flaky, 1},
		{"never", func(int) bool { return false }, Unreproduced, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conf := Confirm(c, ConfirmOptions{Runs: 5, Execute: reproducing(tc.hit)})
			if conf.Label != tc.want || conf.Reproduced != tc.repr || conf.Runs != 5 {
				t.Fatalf("Confirm = %+v, want label %s with %d/5 reproduced", conf, tc.want, tc.repr)
			}
			if conf.Sig != c.Sig.Key() {
				t.Fatalf("confirmation bound to %q, want cluster signature %q", conf.Sig, c.Sig.Key())
			}
		})
	}
}

// TestConfirmNearMatchCounts: an attempt whose deep stack differs but
// shares the bounded prefix still counts as a reproduction.
func TestConfirmNearMatchCounts(t *testing.T) {
	c := confirmFixture(t)
	exec := func(rec Record, attempt int) Record {
		out := rec
		out.Stack = "toy.Master.commitPending<toy.Master.onTaskDone<other.tail"
		out.Sig = out.Signature().Key()
		return out
	}
	conf := Confirm(c, ConfirmOptions{Runs: 3, Execute: exec})
	if conf.Label != Confirmed || conf.Reproduced != 3 {
		t.Fatalf("near-match attempts not counted: %+v", conf)
	}
}

// TestConfirmEmitsTriageCampaign: the pass runs as a campaign under
// Campaign "triage", visible to any attached sink (and so to traces).
func TestConfirmEmitsTriageCampaign(t *testing.T) {
	c := confirmFixture(t)
	sink := &collectSink{}
	Confirm(c, ConfirmOptions{Runs: 4, Workers: 2, Sink: sink,
		Execute: reproducing(func(int) bool { return true })})
	starts, runs, ends := 0, 0, 0
	for _, ev := range sink.evs {
		if ev.Campaign != "triage" || ev.System != "toysys" {
			t.Fatalf("event outside the triage scope: %+v", ev)
		}
		switch ev.Kind {
		case obs.CampaignStart:
			starts++
		case obs.RunDone:
			runs++
			if ev.Crash != c.Sig.Point {
				t.Fatalf("RunDone crash = %q, want representative point %q", ev.Crash, c.Sig.Point)
			}
		case obs.CampaignEnd:
			ends++
			if ev.Bugs != 4 {
				t.Fatalf("CampaignEnd bugs = %d, want 4 reproductions", ev.Bugs)
			}
		}
	}
	if starts != 1 || runs != 4 || ends != 1 {
		t.Fatalf("campaign lifecycle = %d/%d/%d (start/run/end), want 1/4/1", starts, runs, ends)
	}
}

// TestConfirmDefaultRuns: unset Runs falls back to DefaultConfirmRuns.
func TestConfirmDefaultRuns(t *testing.T) {
	c := confirmFixture(t)
	conf := Confirm(c, ConfirmOptions{Execute: reproducing(func(int) bool { return true })})
	if conf.Runs != DefaultConfirmRuns {
		t.Fatalf("Runs = %d, want DefaultConfirmRuns = %d", conf.Runs, DefaultConfirmRuns)
	}
}
