package triage

import "repro/internal/campaign"

// Recorder adapts a Store to the campaign.RunRecorder interface: each
// failing run a campaign reports is flattened into a Record and
// appended. Non-failing runs are skipped unless All is set — the store
// is a bug database, not a run archive. Append errors are latched in
// the store and surface from Store.Close, since the RunRecorder
// contract has no error channel.
type Recorder struct {
	store *Store
	// All records every run, not only the failing ones.
	All bool
}

// NewRecorder wraps a store as a failing-runs-only recorder.
func NewRecorder(store *Store) *Recorder { return &Recorder{store: store} }

// Record implements campaign.RunRecorder.
func (r *Recorder) Record(rr campaign.RunRecord) {
	if !rr.Failing && !r.All {
		return
	}
	r.store.Append(FromRunRecord(rr))
}
