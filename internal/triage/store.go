package triage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// DefaultFlushEvery is the append batch size: the store fsyncs after
// this many buffered lines (and on Close), bounding how much a crash
// can lose without paying a sync per record.
const DefaultFlushEvery = 16

// storeLine is the on-disk envelope: one JSON line per entry,
// discriminated by Kind. Run records and confirmation verdicts share
// the file so a store is a complete, self-contained triage database.
type storeLine struct {
	Kind    string        `json:"kind"` // "run" or "confirm"
	Run     *Record       `json:"run,omitempty"`
	Confirm *Confirmation `json:"confirm,omitempty"`
}

// Store is an append-only JSONL bug-report database. Appends are
// buffered and fsync'd in batches; opening an existing store first
// heals a torn tail (a fragment left by a process killed mid-write)
// exactly like the campaign checkpoints, so appends after a crash stay
// on their own lines. A Store is safe for concurrent appends.
type Store struct {
	path string

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	every   int
	pending int
	err     error // first write error, latched
}

// OpenStore opens (creating if needed) the store at path for appending.
func OpenStore(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("triage: open store %s: %w", path, err)
	}
	healStoreTail(f)
	return &Store{path: path, f: f, w: bufio.NewWriter(f), every: DefaultFlushEvery}, nil
}

// healStoreTail newline-terminates a torn trailing fragment so the next
// append starts on its own line (the fragment itself is skipped on
// load, like a torn campaign checkpoint).
func healStoreTail(f *os.File) {
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, st.Size()-1); err != nil || last[0] == '\n' {
		return
	}
	f.Write([]byte{'\n'})
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Append persists one run record.
func (s *Store) Append(rec Record) error {
	if rec.Sig == "" {
		rec.Sig = rec.Signature().Key()
	}
	return s.append(storeLine{Kind: "run", Run: &rec})
}

// AppendConfirmation persists one confirmation verdict. Later verdicts
// for the same signature supersede earlier ones on load.
func (s *Store) AppendConfirmation(c Confirmation) error {
	return s.append(storeLine{Kind: "confirm", Confirm: &c})
}

func (s *Store) append(ln storeLine) error {
	b, err := json.Marshal(ln)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return err
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
		return err
	}
	s.pending++
	if s.pending >= s.every {
		if err := s.flushLocked(); err != nil {
			return err
		}
	}
	return nil
}

// flushLocked drains the buffer and fsyncs. Callers hold s.mu.
func (s *Store) flushLocked() error {
	if err := s.w.Flush(); err != nil {
		s.err = err
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.err = err
		return err
	}
	s.pending = 0
	return nil
}

// Flush forces the buffered batch to disk.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.flushLocked()
}

// Close flushes, fsyncs and closes the store. It returns the first
// error encountered over the store's lifetime, so a caller that only
// checks Close still sees dropped writes.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	flushErr := s.flushLocked()
	closeErr := s.f.Close()
	if s.err != nil {
		return s.err
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Load reads one or more store files into a fresh Index, merging and
// deduplicating as it goes. Missing files are an error; malformed lines
// (torn tails, hand-edit damage) are skipped, matching the campaign
// checkpoint loader.
func Load(paths ...string) (*Index, error) {
	ix := NewIndex()
	for _, p := range paths {
		if err := ix.LoadFile(p); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// LoadFile merges one store file into the index.
func (ix *Index) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("triage: open store %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		var ln storeLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			continue
		}
		switch {
		case ln.Kind == "run" && ln.Run != nil:
			ix.Add(*ln.Run)
		case ln.Kind == "confirm" && ln.Confirm != nil:
			ix.AddConfirmation(*ln.Confirm)
		}
	}
	return sc.Err()
}
