package triage

import (
	"repro/internal/campaign"
	"repro/internal/obs"
)

// Label classifies a cluster after a confirmation pass.
type Label string

const (
	// Confirmed: the bug reproduced in a majority of re-executions.
	Confirmed Label = "CONFIRMED"
	// Flaky: it reproduced, but in fewer than half of the attempts.
	Flaky Label = "FLAKY"
	// Unreproduced: no re-execution hit the same signature.
	Unreproduced Label = "UNREPRODUCED"
)

// Confirmation is the persisted verdict of one confirmation pass.
type Confirmation struct {
	Sig        string `json:"sig"` // signature key of the confirmed cluster
	Label      Label  `json:"label"`
	Runs       int    `json:"runs"`       // re-execution attempts
	Reproduced int    `json:"reproduced"` // attempts matching the cluster
}

// Execute re-runs a cluster's representative record once. The attempt
// index perturbs the seed (the simulation is deterministic, so
// re-running the identical seed would trivially reproduce even a
// schedule-dependent bug); the returned record describes what the
// re-execution observed, whether it failed or not. The core package
// provides the real implementation on top of the trigger; tests inject
// synthetic ones.
type Execute func(rec Record, attempt int) Record

// ConfirmOptions configures a confirmation pass.
type ConfirmOptions struct {
	// Runs is the number of re-execution attempts; defaults to
	// DefaultConfirmRuns.
	Runs int
	// Workers bounds the attempt parallelism (campaign engine semantics).
	Workers int
	// Sink observes the attempts as a campaign under Scope{System,
	// Campaign: "triage"} — confirmation spans appear in the obs trace
	// like any other campaign's.
	Sink obs.Sink
	// Execute performs one attempt. Required.
	Execute Execute
}

// DefaultConfirmRuns is the attempt count when ConfirmOptions.Runs is
// unset: enough for a majority vote that separates deterministic bugs
// from coin-flip flakes.
const DefaultConfirmRuns = 5

// Confirm re-executes the cluster's representative crash point N times
// through the campaign engine and labels the cluster:
//
//	reproduced == 0            -> UNREPRODUCED
//	reproduced >= ceil(N/2)    -> CONFIRMED
//	otherwise                  -> FLAKY
//
// An attempt counts as reproduced when its resulting record matches the
// cluster (same signature key, or a near-duplicate under the
// stack-prefix fallback).
func Confirm(c *Cluster, opts ConfirmOptions) Confirmation {
	n := opts.Runs
	if n <= 0 {
		n = DefaultConfirmRuns
	}
	rep := c.Representative()
	bugs := 0
	results := campaign.Run(n, campaign.Options[Record]{
		Workers: opts.Workers,
		Sink:    opts.Sink,
		Scope:   obs.Scope{System: rep.System, Campaign: "triage"},
		Annotate: func(ev *obs.Event, i int, r Record) {
			if c.Matches(r) {
				bugs++ // Annotate runs under the completion lock
			}
			ev.Bugs = bugs
			ev.Crash = rep.Point
			ev.Fault = r.Fault
			ev.Target = r.Target
			ev.Outcome = r.Outcome
			ev.Sim = r.Duration
		},
	}, func(i int) Record {
		return opts.Execute(rep, i)
	})
	reproduced := 0
	for _, r := range results {
		if c.Matches(r) {
			reproduced++
		}
	}
	label := Flaky
	switch {
	case reproduced == 0:
		label = Unreproduced
	case 2*reproduced >= n:
		label = Confirmed
	}
	return Confirmation{Sig: c.Sig.Key(), Label: label, Runs: n, Reproduced: reproduced}
}
