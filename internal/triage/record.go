package triage

import (
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/sim"
)

// Record is one failing run as persisted in the store: the flattened
// run report plus its precomputed signature key. Raw (un-normalized)
// fields are kept so a record is enough to re-execute the run during
// confirmation; normalization happens only inside Signature.
type Record struct {
	System   string `json:"system"`
	Campaign string `json:"campaign"`
	Run      int    `json:"run"`
	Seed     int64  `json:"seed"`
	Scale    int    `json:"scale,omitempty"`

	Point    string `json:"point,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Stack    string `json:"stack,omitempty"`

	Fault      string   `json:"fault,omitempty"`
	Target     string   `json:"target,omitempty"`
	Outcome    string   `json:"outcome"`
	Exceptions []string `json:"exceptions,omitempty"`
	Witnesses  []string `json:"witnesses,omitempty"`
	Reason     string   `json:"reason,omitempty"`
	Duration   sim.Time `json:"duration,omitempty"`

	// Sig is the canonical signature key, precomputed at append time so
	// store files are self-describing. The loader recomputes it when
	// absent (hand-edited files) and trusts it otherwise.
	Sig string `json:"sig,omitempty"`
}

// FromRunRecord converts the campaign-level flattening into a store
// record with its signature key filled in.
func FromRunRecord(rr campaign.RunRecord) Record {
	rec := Record{
		System:     rr.System,
		Campaign:   rr.Campaign,
		Run:        rr.Run,
		Seed:       rr.Seed,
		Scale:      rr.Scale,
		Point:      rr.Point,
		Scenario:   rr.Scenario,
		Stack:      rr.Stack,
		Fault:      rr.Fault,
		Target:     rr.Target,
		Outcome:    rr.Outcome,
		Exceptions: rr.Exceptions,
		Witnesses:  rr.Witnesses,
		Reason:     rr.Reason,
		Duration:   rr.Duration,
	}
	rec.Sig = rec.Signature().Key()
	return rec
}

// Signature computes the record's canonical bug signature from its raw
// fields.
func (r Record) Signature() Signature {
	return SignatureOf(r.System, r.Point, r.Scenario, r.Fault, r.Outcome, r.Exceptions, r.Stack)
}

// key returns the record's signature key, computing it when the stored
// one is absent.
func (r Record) key() string {
	if r.Sig != "" {
		return r.Sig
	}
	return r.Signature().Key()
}

// identity distinguishes records for deduplication: the same run of the
// same campaign appended twice (a re-run against one store, a resumed
// campaign, an ingest of overlapping files) must collapse to one
// record, while genuinely distinct reproductions must not.
func (r Record) identity() string {
	var b strings.Builder
	b.WriteString(r.key())
	b.WriteByte('|')
	b.WriteString(r.System)
	b.WriteByte('|')
	b.WriteString(r.Campaign)
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(r.Seed, 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(r.Run))
	return b.String()
}
