package triage

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// StackHashFrames bounds the stack hash to the innermost frames. Deep
// frames vary with scheduling context (which RPC drove the call); the
// innermost frames identify the crashing code path.
const StackHashFrames = 3

// Signature is the canonical identity of a bug: the static crash point,
// how the fault was injected, what the oracle concluded, which new
// exception surfaced (normalized), and a bounded hash of the crash
// stack. Two failing runs with equal signatures are the same bug
// regardless of seed, worker count or campaign.
type Signature struct {
	System    string // runner name ("" inside a single-system campaign)
	Point     string // static crash point id ("toy.Master.commitPending#0")
	Scenario  string // "pre-read" / "post-write" ("" for baselines)
	Fault     string // "crash" / "shutdown"
	Outcome   string // oracle verdict ("job-failure", "hang", ...)
	Exception string // normalized, sorted, ";"-joined new-exception signatures
	StackHash string // FNV-64a of the normalized innermost StackHashFrames frames
}

// FailmodeOutcomePrefix marks outcomes synthesized by the failure-mode
// analytics layer (internal/failmode) rather than by an oracle. Records
// carrying such an outcome are advisory — a discovered trace-shape
// cluster, not an oracle verdict — and their clusters render under
// "failmode-" ids so they are distinguishable from oracle-confirmed
// bugs at a glance in cttriage output.
const FailmodeOutcomePrefix = "failmode:"

// Key returns the exact-match clustering key.
func (s Signature) Key() string {
	return strings.Join([]string{
		s.System, s.Point, s.Scenario, s.Fault, s.Outcome, s.Exception, s.StackHash,
	}, "|")
}

// ID returns the short human-facing cluster id ("bug-1a2b3c4d", or
// "failmode-1a2b3c4d" for discovered failure modes), derived from the
// key so it is stable across stores and machines.
func (s Signature) ID() string {
	h := fnv.New64a()
	h.Write([]byte(s.Key()))
	prefix := "bug"
	if strings.HasPrefix(s.Outcome, FailmodeOutcomePrefix) {
		prefix = "failmode"
	}
	return fmt.Sprintf("%s-%08x", prefix, uint32(h.Sum64()))
}

// SignatureOf builds the canonical signature for one failing run.
// Exception signatures are normalized, deduplicated and sorted so the
// set identity does not depend on discovery order; the stack hash
// covers the normalized innermost frames only.
func SignatureOf(system, point, scenario, fault, outcome string, exceptions []string, stack string) Signature {
	return Signature{
		System:    system,
		Point:     point,
		Scenario:  scenario,
		Fault:     fault,
		Outcome:   outcome,
		Exception: normalizeExceptionSet(exceptions),
		StackHash: stackHash(stack),
	}
}

// normalizeExceptionSet canonicalizes a new-exception set into a single
// deterministic string.
func normalizeExceptionSet(exceptions []string) string {
	if len(exceptions) == 0 {
		return ""
	}
	norm := make([]string, 0, len(exceptions))
	seen := make(map[string]bool, len(exceptions))
	for _, ex := range exceptions {
		n := NormalizeException(ex)
		if !seen[n] {
			seen[n] = true
			norm = append(norm, n)
		}
	}
	sort.Strings(norm)
	return strings.Join(norm, ";")
}

// stackFrames splits a probe stack ("inner<mid<outer") into normalized
// frames, innermost first, truncated to StackHashFrames.
func stackFrames(stack string) []string {
	if stack == "" {
		return nil
	}
	frames := strings.Split(stack, "<")
	if len(frames) > StackHashFrames {
		frames = frames[:StackHashFrames]
	}
	for i, f := range frames {
		frames[i] = NormalizeText(f)
	}
	return frames
}

// stackHash hashes the normalized bounded stack prefix. Empty stacks
// (baseline campaigns have none) hash to "".
func stackHash(stack string) string {
	frames := stackFrames(stack)
	if len(frames) == 0 {
		return ""
	}
	h := fnv.New64a()
	for i, f := range frames {
		if i > 0 {
			h.Write([]byte{'<'})
		}
		h.Write([]byte(f))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// sameBugModuloStack reports whether two signatures agree on everything
// except the stack hash — the precondition for the nearest-cluster
// fallback, which then compares stack-frame prefixes.
func sameBugModuloStack(a, b Signature) bool {
	return a.System == b.System && a.Point == b.Point && a.Scenario == b.Scenario &&
		a.Fault == b.Fault && a.Outcome == b.Outcome && a.Exception == b.Exception
}

// stackSimilarity is the common-prefix ratio between two normalized
// frame slices: shared leading frames divided by the longer length.
// Two empty stacks are identical (1); one-sided emptiness is 0.
func stackSimilarity(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	if max == 0 {
		return 1
	}
	common := 0
	for common < len(a) && common < len(b) && a[common] == b[common] {
		common++
	}
	return float64(common) / float64(max)
}
