package triage

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// Suppressions is the known-issue list: clusters matching it are hidden
// from list/diff output so repeat campaigns surface only genuinely new
// bugs. The file format is one entry per line — either a cluster id
// ("bug-1a2b3c4d") or a full signature key — with '#' comments and
// blank lines ignored.
type Suppressions struct {
	entries map[string]bool
}

// LoadSuppressions reads a suppression file; an empty path yields an
// empty (suppress-nothing) list.
func LoadSuppressions(path string) (*Suppressions, error) {
	s := &Suppressions{entries: make(map[string]bool)}
	if path == "" {
		return s, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("triage: open suppressions %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		s.entries[line] = true
	}
	return s, sc.Err()
}

// Suppressed reports whether the cluster is on the known-issue list,
// by cluster id or by any of its merged signature keys.
func (s *Suppressions) Suppressed(c *Cluster) bool {
	if s == nil || len(s.entries) == 0 {
		return false
	}
	if s.entries[c.ID()] {
		return true
	}
	for _, k := range c.Keys {
		if s.entries[k] {
			return true
		}
	}
	return false
}

// Keys returns a copy of the raw entry set — signature keys and cluster
// ids mixed, as the file listed them — for consumers that match entries
// against signature keys directly (the fleet scheduler); cluster-id
// entries simply never match there.
func (s *Suppressions) Keys() map[string]bool {
	if s == nil {
		return nil
	}
	out := make(map[string]bool, len(s.entries))
	for k := range s.entries {
		out[k] = true
	}
	return out
}

// Filter returns the clusters not on the suppression list, preserving
// rank order, along with how many were dropped.
func (s *Suppressions) Filter(clusters []*Cluster) (kept []*Cluster, dropped int) {
	for _, c := range clusters {
		if s.Suppressed(c) {
			dropped++
			continue
		}
		kept = append(kept, c)
	}
	return kept, dropped
}
