package triage

import (
	"fmt"
	"testing"
)

// TestClustersExactGrouping: records with equal signatures collapse to
// one cluster; different outcomes stay separate.
func TestClustersExactGrouping(t *testing.T) {
	ix := NewIndex()
	for seed := int64(0); seed < 4; seed++ {
		ix.Add(testRecord("toysys", seed, int(seed)))
	}
	hang := testRecord("toysys", 5, 5)
	hang.Outcome = "hang"
	hang.Exceptions = nil
	ix.Add(hang)

	clusters := ix.Clusters()
	if len(clusters) != 2 {
		t.Fatalf("%d clusters, want 2", len(clusters))
	}
	// Ranked by reproduction count: the 4-record cluster first.
	if len(clusters[0].Records) != 4 || clusters[0].DistinctSeeds() != 4 {
		t.Fatalf("top cluster has %d records / %d seeds, want 4/4",
			len(clusters[0].Records), clusters[0].DistinctSeeds())
	}
	if clusters[1].Sig.Outcome != "hang" {
		t.Fatalf("second cluster outcome %q, want hang", clusters[1].Sig.Outcome)
	}
	if ix.DistinctBugs() != 2 {
		t.Fatalf("DistinctBugs = %d, want 2", ix.DistinctBugs())
	}
}

// TestClustersNearestFallback: a record whose deep stack tail differs
// but shares the bounded-frame prefix merges into the main cluster.
func TestClustersNearestFallback(t *testing.T) {
	ix := NewIndex()
	a := testRecord("toysys", 1, 0)
	a.Stack = "a.b<c.d<e.f"
	b := testRecord("toysys", 2, 1)
	b.Stack = "a.b<c.d<x.y" // 2/3 shared prefix >= 0.5
	c := testRecord("toysys", 3, 2)
	c.Stack = "q.r<s.t<u.v" // disjoint: its own cluster
	for _, r := range []Record{a, a, b, c} {
		r := r
		r.Run += 10 // make the duplicate distinct by run index
		ix.Add(r)
		ix.Add(r)
	}
	clusters := ix.Clusters()
	if len(clusters) != 2 {
		for _, cl := range clusters {
			t.Logf("cluster %s keys=%v records=%d", cl.ID(), cl.Keys, len(cl.Records))
		}
		t.Fatalf("%d clusters, want 2 (near-duplicate merged, disjoint split)", len(clusters))
	}
	if len(clusters[0].Keys) != 2 {
		t.Fatalf("merged cluster has keys %v, want the two near-duplicate signatures", clusters[0].Keys)
	}
	// The merged cluster matches records from either constituent.
	if !clusters[0].Matches(a) || !clusters[0].Matches(b) {
		t.Fatal("merged cluster does not match its constituent records")
	}
	if clusters[0].Matches(c) {
		t.Fatal("merged cluster wrongly matches the disjoint-stack record")
	}
}

// TestClustersDeterministic: insertion order must not change the
// rendered table — byte-identical output is the acceptance bar.
func TestClustersDeterministic(t *testing.T) {
	build := func(order []int) string {
		ix := NewIndex()
		recs := make([]Record, 0, 9)
		for i := 0; i < 9; i++ {
			r := testRecord("toysys", int64(i%3), i)
			if i%3 == 1 {
				r.Outcome = "hang"
			}
			if i%3 == 2 {
				r.Fault = "crash"
			}
			recs = append(recs, r)
		}
		for _, i := range order {
			ix.Add(recs[i])
		}
		return ClusterTable(ix.Clusters())
	}
	fwd := build([]int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	rev := build([]int{8, 7, 6, 5, 4, 3, 2, 1, 0})
	shuf := build([]int{4, 0, 8, 2, 6, 1, 5, 3, 7})
	if fwd != rev || fwd != shuf {
		t.Fatalf("cluster table depends on insertion order:\n--- fwd\n%s--- rev\n%s--- shuf\n%s", fwd, rev, shuf)
	}
}

// TestDiff: self-diff is empty; a genuinely new signature surfaces.
func TestDiff(t *testing.T) {
	ix := NewIndex()
	ix.Add(testRecord("toysys", 1, 0))
	base := ix.Clusters()
	if d := Diff(base, base); len(d) != 0 {
		t.Fatalf("self-diff returned %d clusters, want 0", len(d))
	}
	fresh := testRecord("toysys", 2, 1)
	fresh.Outcome = "hang"
	ix.Add(fresh)
	cur := ix.Clusters()
	d := Diff(cur, base)
	if len(d) != 1 || d[0].Sig.Outcome != "hang" {
		t.Fatalf("diff = %v, want exactly the new hang cluster", d)
	}
}

// TestSuppressions: suppressed clusters drop from the filtered view by
// id or by signature key.
func TestSuppressions(t *testing.T) {
	ix := NewIndex()
	ix.Add(testRecord("toysys", 1, 0))
	hang := testRecord("toysys", 2, 1)
	hang.Outcome = "hang"
	ix.Add(hang)
	clusters := ix.Clusters()

	s := &Suppressions{entries: map[string]bool{clusters[0].ID(): true}}
	kept, dropped := s.Filter(clusters)
	if len(kept) != 1 || dropped != 1 || kept[0].ID() == clusters[0].ID() {
		t.Fatalf("id suppression: kept %d dropped %d", len(kept), dropped)
	}
	s = &Suppressions{entries: map[string]bool{clusters[1].Sig.Key(): true}}
	kept, dropped = s.Filter(clusters)
	if len(kept) != 1 || dropped != 1 || kept[0].ID() != clusters[0].ID() {
		t.Fatalf("key suppression: kept %d dropped %d", len(kept), dropped)
	}
}

// BenchmarkTriageIngest measures the ingest/cluster hot path: building
// the index from pre-parsed records and clustering it.
func BenchmarkTriageIngest(b *testing.B) {
	recs := syntheticRecords(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := NewIndex()
		for _, r := range recs {
			ix.Add(r)
		}
		if n := len(ix.Clusters()); n == 0 {
			b.Fatal("no clusters")
		}
	}
}

// syntheticRecords fabricates a store-shaped workload: nGroups distinct
// bugs, each reproduced under varying seeds with volatile text baked
// into exceptions and targets so the normalizer runs on every add.
func syntheticRecords(n int) []Record {
	const groups = 40
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		g := i % groups
		recs = append(recs, Record{
			System:   "toysys",
			Campaign: "test",
			Run:      i,
			Seed:     int64(i / groups),
			Scale:    1,
			Point:    fmt.Sprintf("toy.Master.method%d#0", g),
			Scenario: "pre-read",
			Stack:    fmt.Sprintf("toy.Master.method%d<toy.Master.onTaskDone<rpc.dispatch", g),
			Fault:    "crash",
			Target:   fmt.Sprintf("node%d:%d", i%7, 7000+i%7),
			Outcome:  "job-failure",
			Exceptions: []string{
				fmt.Sprintf("NullPointerException@toy.Master.method%d on node%d:%d at 2024-01-02T03:04:%02dZ", g, i%7, 7000+i%7, i%60),
			},
		})
	}
	return recs
}
