package triage

import (
	"fmt"
	"sort"
	"strings"
)

// SimilarityThreshold is the minimum stack-prefix similarity for the
// nearest-cluster fallback: a signature group whose only difference
// from an existing cluster is the deep stack tail merges into it when
// at least half of the bounded frames are a shared prefix.
const SimilarityThreshold = 0.5

// Index is the in-memory view over one or more store files: records
// deduplicated by identity, plus the latest confirmation verdict per
// signature key. The zero value is not usable; call NewIndex.
type Index struct {
	records []Record
	seen    map[string]bool         // record identity -> present
	confirm map[string]Confirmation // signature key -> latest verdict
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{seen: make(map[string]bool), confirm: make(map[string]Confirmation)}
}

// Add merges one record, dropping exact duplicates (same signature,
// campaign, seed and run). It reports whether the record was new.
// Duplicate-dropping is what makes ingestion idempotent: re-running an
// identical campaign against one store leaves the index — and every
// table rendered from it — byte-identical.
func (ix *Index) Add(rec Record) bool {
	if rec.Sig == "" {
		rec.Sig = rec.Signature().Key()
	}
	id := rec.identity()
	if ix.seen[id] {
		return false
	}
	ix.seen[id] = true
	ix.records = append(ix.records, rec)
	return true
}

// Has reports whether an equivalent record is already indexed.
func (ix *Index) Has(rec Record) bool { return ix.seen[rec.identity()] }

// AddConfirmation merges one confirmation verdict; the last verdict per
// signature key wins, so re-confirming a cluster updates its label.
func (ix *Index) AddConfirmation(c Confirmation) { ix.confirm[c.Sig] = c }

// Len returns the number of deduplicated records.
func (ix *Index) Len() int { return len(ix.records) }

// Records returns the deduplicated records in insertion order. The
// slice is shared; callers must not mutate it.
func (ix *Index) Records() []Record { return ix.records }

// Confirmations returns the latest confirmation verdict per signature
// key, sorted by key for deterministic iteration.
func (ix *Index) Confirmations() []Confirmation {
	out := make([]Confirmation, 0, len(ix.confirm))
	for _, c := range ix.confirm {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sig < out[j].Sig })
	return out
}

// Confirmation returns the latest verdict recorded for a signature key.
func (ix *Index) Confirmation(sig string) (Confirmation, bool) {
	c, ok := ix.confirm[sig]
	return c, ok
}

// Cluster is one distinct bug: all records sharing a signature, plus
// near-duplicates merged by the stack-prefix fallback.
type Cluster struct {
	// Sig is the representative signature (of the largest merged group).
	Sig Signature
	// Keys are all signature keys merged into the cluster, sorted.
	Keys []string
	// Records are the cluster's runs in deterministic order.
	Records []Record
	// Confirm is the latest confirmation verdict, if any.
	Confirm *Confirmation

	frames []string // normalized bounded stack frames of Sig's group
}

// ID returns the cluster's stable short id.
func (c *Cluster) ID() string { return c.Sig.ID() }

// DistinctSeeds counts how many different seeds reproduced the bug.
func (c *Cluster) DistinctSeeds() int {
	seeds := make(map[int64]bool, len(c.Records))
	for _, r := range c.Records {
		seeds[r.Seed] = true
	}
	return len(seeds)
}

// Campaigns returns the sorted distinct campaign kinds that hit the bug.
func (c *Cluster) Campaigns() []string {
	set := make(map[string]bool, 2)
	for _, r := range c.Records {
		set[r.Campaign] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Representative returns the record the confirmation pass re-executes:
// the first (in deterministic order) that carries a crash point, or the
// first record at all when none does (baseline-only clusters cannot be
// re-executed through the trigger and are skipped by cttriage confirm).
func (c *Cluster) Representative() Record {
	for _, r := range c.Records {
		if r.Point != "" {
			return r
		}
	}
	return c.Records[0]
}

// Matches reports whether a record's signature belongs to this cluster:
// either one of the merged keys exactly, or a near-duplicate under the
// stack-prefix fallback. The confirmation pass uses it as its
// reproduction oracle.
func (c *Cluster) Matches(rec Record) bool {
	key := rec.key()
	for _, k := range c.Keys {
		if k == key {
			return true
		}
	}
	sig := rec.Signature()
	return sameBugModuloStack(sig, c.Sig) &&
		stackSimilarity(stackFrames(rec.Stack), c.frames) >= SimilarityThreshold
}

// sigGroup is an exact-signature grouping, the unit of cluster merging.
type sigGroup struct {
	sig     Signature
	key     string
	records []Record
	frames  []string
}

// Clusters groups the indexed records into distinct bugs. Pass one
// groups by exact signature key. Pass two walks the groups largest
// first and merges each into the best-matching existing cluster when
// every field but the stack hash agrees and the bounded stack frames
// share at least SimilarityThreshold of their prefix — near-duplicates
// whose deep frames differ by scheduling context. Clusters are ranked
// by reproduction count, then distinct-seed coverage, then key; every
// step is deterministic, so the same records always yield the same
// table bytes.
func (ix *Index) Clusters() []*Cluster {
	byKey := make(map[string]*sigGroup)
	for _, rec := range ix.records {
		key := rec.key()
		g := byKey[key]
		if g == nil {
			g = &sigGroup{sig: rec.Signature(), key: key, frames: stackFrames(rec.Stack)}
			byKey[key] = g
		}
		g.records = append(g.records, rec)
	}
	groups := make([]*sigGroup, 0, len(byKey))
	for _, g := range byKey {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i].records) != len(groups[j].records) {
			return len(groups[i].records) > len(groups[j].records)
		}
		return groups[i].key < groups[j].key
	})

	var clusters []*Cluster
	for _, g := range groups {
		best := -1
		bestSim := 0.0
		for ci, c := range clusters {
			if !sameBugModuloStack(g.sig, c.Sig) {
				continue
			}
			sim := stackSimilarity(g.frames, c.frames)
			if sim >= SimilarityThreshold && sim > bestSim {
				best, bestSim = ci, sim
			}
		}
		if best >= 0 {
			c := clusters[best]
			c.Keys = append(c.Keys, g.key)
			c.Records = append(c.Records, g.records...)
			continue
		}
		clusters = append(clusters, &Cluster{
			Sig:     g.sig,
			Keys:    []string{g.key},
			Records: g.records,
			frames:  g.frames,
		})
	}

	for _, c := range clusters {
		sort.Strings(c.Keys)
		sortRecords(c.Records)
		if v, ok := ix.confirm[c.Sig.Key()]; ok {
			conf := v
			c.Confirm = &conf
		}
	}
	sort.Slice(clusters, func(i, j int) bool {
		if len(clusters[i].Records) != len(clusters[j].Records) {
			return len(clusters[i].Records) > len(clusters[j].Records)
		}
		si, sj := clusters[i].DistinctSeeds(), clusters[j].DistinctSeeds()
		if si != sj {
			return si > sj
		}
		return clusters[i].Sig.Key() < clusters[j].Sig.Key()
	})
	return clusters
}

// sortRecords orders records deterministically: by system, campaign,
// seed, run, then signature key.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.System != b.System {
			return a.System < b.System
		}
		if a.Campaign != b.Campaign {
			return a.Campaign < b.Campaign
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		return a.key() < b.key()
	})
}

// DistinctBugs is the headline dedup number: how many clusters the
// records collapse into.
func (ix *Index) DistinctBugs() int { return len(ix.Clusters()) }

// Diff returns the clusters of cur whose signatures are entirely absent
// from prior — the genuinely new bugs since the prior store snapshot. A
// cluster sharing any merged key with prior is considered known.
func Diff(cur, prior []*Cluster) []*Cluster {
	known := make(map[string]bool)
	for _, c := range prior {
		for _, k := range c.Keys {
			known[k] = true
		}
	}
	var fresh []*Cluster
	for _, c := range cur {
		isNew := true
		for _, k := range c.Keys {
			if known[k] {
				isNew = false
				break
			}
		}
		if isNew {
			fresh = append(fresh, c)
		}
	}
	return fresh
}

// Label returns the cluster's confirmation label, or "-" when the
// cluster has not been through a confirmation pass yet.
func (c *Cluster) Label() string {
	if c.Confirm == nil {
		return "-"
	}
	return string(c.Confirm.Label)
}

// ClusterTable renders the ranked clusters as an aligned text table.
// The rendering is deterministic: equal indexes produce equal bytes.
func ClusterTable(clusters []*Cluster) string {
	var b strings.Builder
	w := newTableWriter(&b)
	w.row("CLUSTER", "LABEL", "RECORDS", "SEEDS", "SYSTEM", "CAMPAIGNS", "POINT", "FAULT", "OUTCOME", "EXCEPTION")
	for _, c := range clusters {
		point := c.Sig.Point
		if point == "" {
			point = "-"
		}
		ex := c.Sig.Exception
		if ex == "" {
			ex = "-"
		}
		sys := c.Sig.System
		if sys == "" {
			sys = "-"
		}
		w.row(c.ID(), c.Label(),
			fmt.Sprintf("%d", len(c.Records)),
			fmt.Sprintf("%d", c.DistinctSeeds()),
			sys,
			strings.Join(c.Campaigns(), ","),
			point, c.Sig.Fault, c.Sig.Outcome, ex)
	}
	w.flush()
	return b.String()
}

// tableWriter is a minimal column aligner (the report package has its
// own; triage keeps a private copy to stay a leaf dependency).
type tableWriter struct {
	out    *strings.Builder
	rows   [][]string
	widths []int
}

func newTableWriter(out *strings.Builder) *tableWriter { return &tableWriter{out: out} }

func (t *tableWriter) row(cols ...string) {
	for len(t.widths) < len(cols) {
		t.widths = append(t.widths, 0)
	}
	for i, c := range cols {
		if len(c) > t.widths[i] {
			t.widths[i] = len(c)
		}
	}
	t.rows = append(t.rows, cols)
}

func (t *tableWriter) flush() {
	for _, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				t.out.WriteString("  ")
			}
			t.out.WriteString(c)
			if i < len(row)-1 {
				for p := len(c); p < t.widths[i]; p++ {
					t.out.WriteByte(' ')
				}
			}
		}
		t.out.WriteByte('\n')
	}
	t.rows = t.rows[:0]
}
