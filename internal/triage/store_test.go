package triage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testRecord(system string, seed int64, run int) Record {
	return Record{
		System:     system,
		Campaign:   "test",
		Run:        run,
		Seed:       seed,
		Scale:      1,
		Point:      "toy.Master.commitPending#0",
		Scenario:   "pre-read",
		Stack:      "toy.Master.commitPending<toy.Master.onTaskDone<rpc.dispatch",
		Fault:      "shutdown",
		Target:     "node1:7001",
		Outcome:    "job-failure",
		Exceptions: []string{"NullPointerException@toy.Master.commitPending"},
	}
}

// TestStoreRoundTrip: appended records and confirmations come back from
// Load with their signatures intact.
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{testRecord("toysys", 11, 0), testRecord("toysys", 12, 3), testRecord("hdfs", 11, 1)}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	conf := Confirmation{Sig: recs[0].Signature().Key(), Label: Confirmed, Runs: 5, Reproduced: 5}
	if err := s.AppendConfirmation(conf); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ix, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(recs) {
		t.Fatalf("loaded %d records, want %d", ix.Len(), len(recs))
	}
	clusters := ix.Clusters()
	var found *Cluster
	for _, c := range clusters {
		if c.Sig.Key() == conf.Sig {
			found = c
		}
	}
	if found == nil || found.Confirm == nil || found.Confirm.Label != Confirmed {
		t.Fatalf("confirmation did not round-trip onto its cluster: %+v", found)
	}
}

// TestStoreAppendIdempotent: appending the same records twice (two runs
// of one campaign against one store) must dedup on load.
func TestStoreAppendIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	for pass := 0; pass < 2; pass++ {
		s, err := OpenStore(path)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 4; run++ {
			if err := s.Append(testRecord("toysys", 11, run)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 4 {
		t.Fatalf("dedup failed: %d records, want 4", ix.Len())
	}
}

// TestStoreHealsTornTail: a fragment from a process killed mid-write
// must not corrupt the next append, and the intact records survive.
func TestStoreHealsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord("toysys", 11, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"run","run":{"system":"toy`)
	f.Close()

	s, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord("toysys", 12, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ix, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 {
		t.Fatalf("after torn tail: %d records, want 2 (fragment skipped, both intact records kept)", ix.Len())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "}\n{") == false {
		t.Fatalf("healed store not line-separated:\n%s", data)
	}
}

// TestStoreLoadMultipleFiles merges and dedups across store files.
func TestStoreLoadMultipleFiles(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.jsonl")
	p2 := filepath.Join(dir, "b.jsonl")
	for _, p := range []string{p1, p2} {
		s, err := OpenStore(p)
		if err != nil {
			t.Fatal(err)
		}
		// One shared record (same identity in both files) plus one unique.
		if err := s.Append(testRecord("toysys", 11, 0)); err != nil {
			t.Fatal(err)
		}
		uniq := testRecord("toysys", 99, 7)
		uniq.Seed = map[string]int64{p1: 100, p2: 200}[p]
		if err := s.Append(uniq); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Load(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 {
		t.Fatalf("merged %d records, want 3 (shared record deduped)", ix.Len())
	}
	if _, err := Load(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("loading a missing store file should error")
	}
}

// TestStoreCloseSurfacesLatchedError: a store whose file has been
// closed under it reports the failure from Close.
func TestStoreCloseSurfacesLatchedError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	s.f.Close() // sabotage the fd; flushes must now fail
	for i := 0; i < DefaultFlushEvery+1; i++ {
		s.Append(testRecord("toysys", int64(i), i))
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close returned nil after writes to a closed fd")
	}
}
