package triage

import (
	"strings"
	"testing"
)

// TestSignatureStableAcrossRuns: the same bug observed under different
// seeds, victims and exception discovery orders must hash to one key.
func TestSignatureStableAcrossRuns(t *testing.T) {
	a := SignatureOf("toysys", "toy.Master.commitPending#0", "pre-read", "shutdown", "job-failure",
		[]string{"NullPointerException@toy.Master.commitPending"},
		"toy.Master.commitPending<toy.Master.onTaskDone<rpc.dispatch")
	b := SignatureOf("toysys", "toy.Master.commitPending#0", "pre-read", "shutdown", "job-failure",
		[]string{"NullPointerException@toy.Master.commitPending"},
		"toy.Master.commitPending<toy.Master.onTaskDone<rpc.dispatch")
	if a.Key() != b.Key() || a.ID() != b.ID() {
		t.Fatalf("identical runs produced different signatures: %q vs %q", a.Key(), b.Key())
	}

	// Volatile detail inside the exception text must not split the bug.
	c := SignatureOf("toysys", "p#0", "pre-read", "crash", "job-failure",
		[]string{"LeaseExpired@x.y on node1:7001 at 2024-01-01T00:00:01Z"}, "")
	d := SignatureOf("toysys", "p#0", "pre-read", "crash", "job-failure",
		[]string{"LeaseExpired@x.y on node9:7009 at 2025-06-30T10:20:30Z"}, "")
	if c.Key() != d.Key() {
		t.Fatalf("volatile exception detail split the signature:\n%q\n%q", c.Key(), d.Key())
	}
}

// TestSignatureSeparatesDistinctBugs: each identity field participates.
func TestSignatureSeparatesDistinctBugs(t *testing.T) {
	base := func() Signature {
		return SignatureOf("toysys", "p#0", "pre-read", "crash", "job-failure",
			[]string{"E@a.b"}, "a.b<c.d<e.f")
	}
	ref := base()
	variants := []Signature{
		SignatureOf("hdfs", "p#0", "pre-read", "crash", "job-failure", []string{"E@a.b"}, "a.b<c.d<e.f"),
		SignatureOf("toysys", "q#1", "pre-read", "crash", "job-failure", []string{"E@a.b"}, "a.b<c.d<e.f"),
		SignatureOf("toysys", "p#0", "post-write", "crash", "job-failure", []string{"E@a.b"}, "a.b<c.d<e.f"),
		SignatureOf("toysys", "p#0", "pre-read", "shutdown", "job-failure", []string{"E@a.b"}, "a.b<c.d<e.f"),
		SignatureOf("toysys", "p#0", "pre-read", "crash", "hang", []string{"E@a.b"}, "a.b<c.d<e.f"),
		SignatureOf("toysys", "p#0", "pre-read", "crash", "job-failure", []string{"F@a.b"}, "a.b<c.d<e.f"),
		SignatureOf("toysys", "p#0", "pre-read", "crash", "job-failure", []string{"E@a.b"}, "x.y<c.d<e.f"),
	}
	for i, v := range variants {
		if v.Key() == ref.Key() {
			t.Errorf("variant %d collided with the reference signature: %q", i, v.Key())
		}
	}
}

// TestSignatureExceptionSetCanonical: order and duplicates in the
// exception set must not matter.
func TestSignatureExceptionSetCanonical(t *testing.T) {
	a := SignatureOf("s", "p", "pre-read", "crash", "job-failure", []string{"B@y", "A@x", "A@x"}, "")
	b := SignatureOf("s", "p", "pre-read", "crash", "job-failure", []string{"A@x", "B@y"}, "")
	if a.Key() != b.Key() {
		t.Fatalf("exception set not canonical: %q vs %q", a.Key(), b.Key())
	}
	if a.Exception != "A@x;B@y" {
		t.Fatalf("exception field = %q, want sorted deduped join", a.Exception)
	}
}

// TestStackHashBounded: only the innermost StackHashFrames frames
// participate, so scheduling-dependent deep frames don't split bugs.
func TestStackHashBounded(t *testing.T) {
	inner := "a.b<c.d<e.f"
	h1 := stackHash(inner + "<outer.one<outer.two")
	h2 := stackHash(inner + "<different.outer")
	if h1 != h2 {
		t.Fatalf("deep frames leaked into the stack hash: %q vs %q", h1, h2)
	}
	if h := stackHash(""); h != "" {
		t.Fatalf("empty stack hashed to %q, want empty", h)
	}
	if stackHash("a.b<c.d<e.f") == stackHash("a.b<c.d<x.y") {
		t.Fatal("distinct bounded frames collided")
	}
}

// TestStackSimilarity covers the fallback metric's edges.
func TestStackSimilarity(t *testing.T) {
	fr := func(s string) []string { return stackFrames(s) }
	cases := []struct {
		a, b string
		want float64
	}{
		{"a<b<c", "a<b<c", 1},
		{"a<b<c", "a<b<x", 2.0 / 3},
		{"a<b<c", "x<b<c", 0},
		{"", "", 1},
		{"a<b<c", "", 0},
		{"a<b", "a<b<c", 2.0 / 3},
	}
	for _, tc := range cases {
		if got := stackSimilarity(fr(tc.a), fr(tc.b)); got != tc.want {
			t.Errorf("stackSimilarity(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestSignatureID: short, prefixed, hex — fit for file names and CLI
// arguments.
func TestSignatureID(t *testing.T) {
	id := SignatureOf("s", "p", "pre-read", "crash", "job-failure", nil, "").ID()
	if !strings.HasPrefix(id, "bug-") || len(id) != len("bug-")+8 {
		t.Fatalf("ID %q not of the form bug-xxxxxxxx", id)
	}
}

func TestFailmodeOutcomeGetsFailmodeID(t *testing.T) {
	bug := SignatureOf("toysys", "", "", "", "hang", nil, "")
	if !strings.HasPrefix(bug.ID(), "bug-") {
		t.Errorf("oracle outcome id = %s, want bug- prefix", bug.ID())
	}
	fm := SignatureOf("toysys", "", "", "", FailmodeOutcomePrefix+"a1b2c3d4", nil, "")
	if !strings.HasPrefix(fm.ID(), "failmode-") {
		t.Errorf("failmode outcome id = %s, want failmode- prefix", fm.ID())
	}
	if len(fm.ID()) != len("failmode-")+8 {
		t.Errorf("failmode id %s has unexpected shape", fm.ID())
	}
}
