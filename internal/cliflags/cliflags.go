// Package cliflags is the shared flag surface of the campaign-driving
// commands (crashtuner, ctbench, ctstudy, cttriage): one registration
// point for the -workers/-checkpoint/-resume/-triage/-obs-addr/-trace
// family, and one Open call that wires the observability stack and the
// triage store those flags name into a ready campaign.Config. Before
// this package each command re-implemented the same ~40 lines of
// obs.Serve + sink assembly + store plumbing, and they had drifted.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/triage"
)

// Flags holds the parsed values of the shared campaign flags. Register
// the subsets a command needs, flag.Parse, then Open.
type Flags struct {
	Workers    int
	Checkpoint string
	Resume     bool
	Triage     string
	ObsAddr    string
	Trace      string

	// Scripting/CI extras (RegisterExtras).
	Progress      bool
	ObsLinger     bool
	ValidateTrace bool
}

// RegisterCampaign installs -workers, -checkpoint and -resume.
// checkpointUsage overrides the -checkpoint help text for commands that
// checkpoint into a directory rather than a single file; empty selects
// the single-file wording.
func (f *Flags) RegisterCampaign(fs *flag.FlagSet, checkpointUsage string) {
	f.RegisterWorkers(fs)
	if checkpointUsage == "" {
		checkpointUsage = "JSONL checkpoint file for the injection campaign"
	}
	fs.StringVar(&f.Checkpoint, "checkpoint", "", checkpointUsage)
	fs.BoolVar(&f.Resume, "resume", false, "resume from -checkpoint, skipping finished points (output is byte-identical to an uninterrupted run)")
}

// RegisterWorkers installs just -workers, for commands whose campaigns
// are not checkpointable.
func (f *Flags) RegisterWorkers(fs *flag.FlagSet) {
	fs.IntVar(&f.Workers, "workers", 0, "campaign worker pool size (0: one per CPU, 1: sequential; output is identical either way)")
}

// RegisterTriage installs -triage. usage overrides the help text; empty
// selects the default wording.
func (f *Flags) RegisterTriage(fs *flag.FlagSet, usage string) {
	if usage == "" {
		usage = "append one record per failing run to this triage store (JSONL; inspect with cttriage)"
	}
	fs.StringVar(&f.Triage, "triage", "", usage)
}

// RegisterObs installs -obs-addr and -trace.
func (f *Flags) RegisterObs(fs *flag.FlagSet) {
	fs.StringVar(&f.ObsAddr, "obs-addr", "", "serve /metrics, /debug/vars and /healthz on this address (e.g. :8080; empty: off)")
	fs.StringVar(&f.Trace, "trace", "", "write a JSONL trace of campaign/run/phase spans to this file")
}

// RegisterExtras installs the scripting/CI flags -progress, -obs-linger
// and -validate-trace.
func (f *Flags) RegisterExtras(fs *flag.FlagSet) {
	fs.BoolVar(&f.Progress, "progress", false, "report campaign progress on stderr")
	fs.BoolVar(&f.ObsLinger, "obs-linger", false, "with -obs-addr: keep the endpoint up after rendering until stdin closes (for scraping in scripts/CI)")
	fs.BoolVar(&f.ValidateTrace, "validate-trace", false, "with -trace: structurally validate the emitted trace on exit and fail if it is malformed")
}

// Runtime is the opened form of the flags: the observability stack is
// serving, the sinks and the triage recorder are live, and Config is
// ready to hand to a campaign. Close releases everything in the order
// the commands used to: store, tracer (validated when asked), linger,
// then the obs endpoint.
type Runtime struct {
	// Config carries Workers, CheckpointPath, Resume, Sink and Recorder
	// as the flags named them.
	Config campaign.Config
	// Store is the open triage store, nil without -triage.
	Store *triage.Store
	// Tracer is the open JSONL tracer, nil without -trace.
	Tracer *obs.Tracer
	// Addr is the bound observability address, "" without -obs-addr.
	Addr string

	flags *Flags
	stop  func() error
}

// Open wires the stack the flags describe: the obs endpoint, the
// metrics/progress/trace sink chain (plus any extra sinks the command
// supplies), and the triage store and recorder. On error nothing stays
// open.
func (f *Flags) Open(extra ...obs.Sink) (*Runtime, error) {
	rt := &Runtime{flags: f}
	if f.ObsAddr != "" {
		addr, stop, err := obs.Serve(f.ObsAddr, nil)
		if err != nil {
			return nil, err
		}
		rt.stop = stop
		rt.Addr = addr
		fmt.Fprintf(os.Stderr, "observability endpoint on http://%s/metrics\n", addr)
	}
	sinks := []obs.Sink{obs.NewMetrics(nil)}
	if f.Progress {
		sinks = append(sinks, obs.Progress(os.Stderr))
	}
	if f.Trace != "" {
		tr, err := obs.OpenTrace(f.Trace, f.Resume)
		if err != nil {
			rt.release()
			return nil, err
		}
		rt.Tracer = tr
		sinks = append(sinks, tr)
	}
	sinks = append(sinks, extra...)
	rt.Config = campaign.Config{
		Workers:        f.Workers,
		CheckpointPath: f.Checkpoint,
		Resume:         f.Resume,
		Sink:           obs.Multi(sinks...),
	}
	if f.Triage != "" {
		store, err := triage.OpenStore(f.Triage)
		if err != nil {
			rt.release()
			return nil, err
		}
		rt.Store = store
		rt.Config.Recorder = triage.NewRecorder(store)
	}
	return rt, nil
}

// release tears down without the close-time extras (validation, linger).
func (rt *Runtime) release() {
	if rt.Tracer != nil {
		rt.Tracer.Close()
		rt.Tracer = nil
	}
	if rt.Store != nil {
		rt.Store.Close()
		rt.Store = nil
	}
	if rt.stop != nil {
		rt.stop()
		rt.stop = nil
	}
}

// Close flushes the store and the tracer, validates the trace when
// -validate-trace asked for it, lingers on the obs endpoint when
// -obs-linger asked for it, and stops the endpoint. The first error
// wins.
func (rt *Runtime) Close() error {
	var first error
	if rt.Store != nil {
		if err := rt.Store.Close(); err != nil && first == nil {
			first = err
		}
		rt.Store = nil
	}
	if rt.Tracer != nil {
		err := rt.Tracer.Close()
		rt.Tracer = nil
		if err != nil {
			if first == nil {
				first = err
			}
		} else if rt.flags.ValidateTrace {
			if err := validateTrace(rt.flags.Trace); err != nil && first == nil {
				first = err
			}
		}
	}
	if rt.flags.ObsLinger && rt.Addr != "" {
		fmt.Fprintln(os.Stderr, "obs-linger: endpoint stays up; close stdin to exit")
		io.Copy(io.Discard, os.Stdin)
	}
	if rt.stop != nil {
		rt.stop()
		rt.stop = nil
	}
	return first
}

func validateTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.ValidateTrace(f); err != nil {
		return fmt.Errorf("trace validation failed: %w", err)
	}
	fmt.Fprintf(os.Stderr, "trace %s validated\n", path)
	return nil
}
