package cliflags

import (
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestOpenWiresTheFlaggedStack pins the flag → Runtime contract every
// command leans on: the parsed values land in campaign.Config, -triage
// opens a store with a recorder, -trace opens a tracer in the sink
// chain, and Close validates the trace when asked.
func TestOpenWiresTheFlaggedStack(t *testing.T) {
	dir := t.TempDir()
	triagePath := filepath.Join(dir, "t.jsonl")
	tracePath := filepath.Join(dir, "tr.jsonl")

	var fl Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fl.RegisterCampaign(fs, "")
	fl.RegisterTriage(fs, "")
	fl.RegisterObs(fs)
	fl.RegisterExtras(fs)
	err := fs.Parse([]string{
		"-workers", "3", "-checkpoint", filepath.Join(dir, "c.jsonl"), "-resume",
		"-triage", triagePath, "-trace", tracePath, "-validate-trace",
	})
	if err != nil {
		t.Fatal(err)
	}

	rt, err := fl.Open()
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.Config
	if cfg.Workers != 3 || cfg.CheckpointPath != filepath.Join(dir, "c.jsonl") || !cfg.Resume {
		t.Errorf("Config did not carry the flags: %+v", cfg)
	}
	if cfg.Sink == nil || cfg.Recorder == nil || rt.Store == nil || rt.Tracer == nil {
		t.Errorf("Open left part of the stack unwired: sink=%v recorder=%v store=%v tracer=%v",
			cfg.Sink != nil, cfg.Recorder != nil, rt.Store != nil, rt.Tracer != nil)
	}
	// A well-formed campaign with one run through the sink chain; Close
	// then validates the trace (-validate-trace rejects a runless one).
	cfg.Sink.Emit(obs.Event{Kind: obs.CampaignStart, Run: -1, Total: 1})
	cfg.Sink.Emit(obs.Event{Kind: obs.RunDone, Run: 0, Done: 1, Total: 1})
	cfg.Sink.Emit(obs.Event{Kind: obs.CampaignEnd, Run: -1, Done: 1, Total: 1})
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(triagePath); err != nil {
		t.Errorf("triage store never created: %v", err)
	}
	if b, err := os.ReadFile(tracePath); err != nil || len(b) == 0 {
		t.Errorf("trace file empty or missing (err=%v)", err)
	}
}

// TestOpenServesObsEndpoint pins that -obs-addr binds a live metrics
// endpoint for the Runtime's lifetime.
func TestOpenServesObsEndpoint(t *testing.T) {
	fl := Flags{ObsAddr: "127.0.0.1:0"}
	rt, err := fl.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Addr == "" {
		t.Fatal("no bound address for -obs-addr")
	}
	resp, err := http.Get("http://" + rt.Addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %s", resp.Status)
	}
}

// TestOpenErrorLeavesNothingOpen pins the error path: a bad trace path
// must not leak the already-opened pieces.
func TestOpenErrorLeavesNothingOpen(t *testing.T) {
	fl := Flags{Trace: filepath.Join(t.TempDir(), "no", "such", "dir", "tr.jsonl")}
	rt, err := fl.Open()
	if err == nil {
		rt.Close()
		t.Fatal("Open succeeded with an unwritable -trace path")
	}
}
