package registry

import "testing"

func TestStudyCountsMatchPaper(t *testing.T) {
	c := StudyCounts()
	if c.Total != 66 {
		t.Errorf("total studied bugs = %d, want 66", c.Total)
	}
	if c.TimingSensitive != 52 {
		t.Errorf("timing-sensitive = %d, want 52", c.TimingSensitive)
	}
	if c.PreRead != 37 {
		t.Errorf("pre-read = %d, want 37", c.PreRead)
	}
	if c.PostWrite != 15 {
		t.Errorf("post-write = %d, want 15", c.PostWrite)
	}
	if c.NonTiming != 14 {
		t.Errorf("non-timing = %d, want 14", c.NonTiming)
	}
	// §4.1.1: 45 of 52 timing-sensitive reproduced + 14 trivial = 59/66.
	if c.Reproduced != 59 {
		t.Errorf("reproduced = %d, want 59", c.Reproduced)
	}
}

func TestNoDuplicateStudiedIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range StudiedBugs() {
		if seen[b.ID] {
			t.Errorf("duplicate bug ID %s", b.ID)
		}
		seen[b.ID] = true
	}
}

func TestNewBugsMatchPaper(t *testing.T) {
	if got := TotalNewBugs(); got != 21 {
		t.Errorf("new bugs = %d, want 21", got)
	}
	rows := NewBugs()
	if len(rows) != 18 {
		t.Errorf("Table 5 rows = %d, want 18", len(rows))
	}
	critical, fixed, seeded := 0, 0, 0
	for _, b := range rows {
		if b.Priority == "Critical" {
			critical += b.Count
		}
		if b.Status == "Fixed" || b.Status == "fixed" {
			fixed += b.Count
		}
		if b.SeededIn != "" {
			seeded++
		}
	}
	// 8 critical bugs (classified by the original developers).
	if critical != 8 {
		t.Errorf("critical = %d, want 8", critical)
	}
	// 16 of 21 fixed at paper time.
	if fixed != 16 {
		t.Errorf("fixed = %d, want 16", fixed)
	}
	if seeded < 6 {
		t.Errorf("seeded counterparts = %d, want >= 6", seeded)
	}
}

func TestFixComplexityShape(t *testing.T) {
	rows := FixComplexity()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	creb, nb := rows[0], rows[1]
	// Similar patch sizes, but much faster fixes for the new bugs.
	if nb.DaysToFix >= creb.DaysToFix/2 {
		t.Errorf("new-bug fix time %v not clearly below CREB %v", nb.DaysToFix, creb.DaysToFix)
	}
	if nb.Comments >= creb.Comments/2 {
		t.Errorf("new-bug comments %v not clearly below CREB %v", nb.Comments, creb.Comments)
	}
}

func TestKubernetesStudy(t *testing.T) {
	bugs := KubernetesBugs()
	if len(bugs) != 14 {
		t.Errorf("k8s bugs = %d, want 14", len(bugs))
	}
	node, pod := 0, 0
	for _, b := range bugs {
		switch b.MetaInfo {
		case "Node":
			node++
		case "Pod":
			pod++
		}
	}
	if node != 8 || pod != 6 {
		t.Errorf("node/pod split = %d/%d, want 8/6", node, pod)
	}
}

func TestBySystem(t *testing.T) {
	by := BySystem()
	for _, sys := range []string{"yarn", "hdfs", "hbase", "zookeeper"} {
		if len(by[sys]) == 0 {
			t.Errorf("no studied bugs for %s", sys)
		}
	}
	// HBase dominates Table 1.
	if len(by["hbase"]) < 20 {
		t.Errorf("hbase bugs = %d, want the Table 1 majority", len(by["hbase"]))
	}
}
