// Package registry records the paper's bug-census data: the 66 studied
// crash-recovery bugs (Table 1 plus the 14 non-timing-sensitive ones),
// the 21 new bugs CrashTuner found (Table 5), the fix-complexity
// comparison (Table 6), and the Kubernetes study (Table 13). Where this
// reproduction seeds a bug's mechanics into a simulated system, the
// record carries the seeding location.
package registry

import "sort"

// Scenario is the crash-point scenario of a bug.
type Scenario string

// Scenarios.
const (
	PreRead   Scenario = "pre-read"
	PostWrite Scenario = "post-write"
	NonTiming Scenario = "non-timing"
)

// StudiedBug is one row of the §2 study (Tables 1 and the 14 trivial
// bugs).
type StudiedBug struct {
	ID       string
	System   string
	MetaInfo string
	Scenario Scenario
	// Reproduced marks bugs CrashTuner reproduces (§4.1.1: 45 of the 52
	// timing-sensitive ones, 59/66 overall).
	Reproduced bool
	// WhyNot explains a failed reproduction.
	WhyNot string
}

func studied(system, meta string, sc Scenario, ids ...string) []StudiedBug {
	out := make([]StudiedBug, 0, len(ids))
	for _, id := range ids {
		out = append(out, StudiedBug{ID: id, System: system, MetaInfo: meta, Scenario: sc, Reproduced: true})
	}
	return out
}

// StudiedBugs returns the 66 studied bugs. The 52 timing-sensitive ones
// follow Table 1; scenarios are taken from the paper's §2 totals (37
// pre-read, 15 post-write) with the per-bug split derived from the bug
// descriptions.
func StudiedBugs() []StudiedBug {
	var bugs []StudiedBug
	// Hadoop2/Yarn (Table 1).
	bugs = append(bugs, studied("yarn", "AppAttemptId", PreRead, "YARN-8664")...)
	bugs = append(bugs, studied("yarn", "NodeId", PreRead,
		"YARN-2273", "YARN-4227", "YARN-5195", "YARN-8233", "YARN-5918")...)
	bugs = append(bugs, studied("yarn", "ApplicationId", PreRead,
		"YARN-7007", "YARN-7591", "YARN-8222", "YARN-4355")...)
	bugs = append(bugs, studied("yarn", "AppState", PreRead, "YARN-4502")...)
	bugs = append(bugs, studied("yarn", "ContainerId", PreRead,
		"MR-3596", "YARN-4152", "MR-4833", "MR-3031")...)
	bugs = append(bugs, studied("yarn", "File", PostWrite, "MR-4099")...)
	bugs = append(bugs, studied("yarn", "TaskAttemptId", PostWrite, "MR-3858")...)
	// HDFS.
	bugs = append(bugs, studied("hdfs", "DatanodeInfo", PreRead, "HDFS-6231", "HDFS-3701")...)
	bugs = append(bugs, studied("hdfs", "File", PreRead, "HDFS-4596")...)
	bugs = append(bugs, studied("hdfs", "BPOfferService", PostWrite, "HDFS-8240", "HDFS-5014")...)
	bugs = append(bugs, studied("hdfs", "NameNode", PostWrite, "HDFS-4404", "HDFS-3031")...)
	// HBase.
	bugs = append(bugs, studied("hbase", "RegionTransition", PostWrite,
		"HBASE-4539", "HBASE-6070", "HBASE-10090", "HBASE-19335")...)
	bugs = append(bugs, studied("hbase", "HRegion", PostWrite,
		"HBASE-4540", "HBASE-3365", "HBASE-5927", "HBASE-5155")...)
	bugs = append(bugs, studied("hbase", "HRegionServer", PreRead,
		"HBASE-3617", "HBASE-3874", "HBASE-3023", "HBASE-3283", "HBASE-3362",
		"HBASE-3024", "HBASE-18014", "HBASE-14536", "HBASE-14621", "HBASE-13546",
		"HBASE-10272", "HBASE-2525", "HBASE-5063", "HBASE-8519", "HBASE-2797")...)
	bugs = append(bugs, studied("hbase", "ZNode", PreRead, "HBASE-7111", "HBASE-5722", "HBASE-5635")...)
	bugs = append(bugs, studied("hbase", "File", PreRead, "HBASE-3722")...)
	// ZooKeeper.
	bugs = append(bugs, studied("zookeeper", "ZNode", PostWrite, "ZK-569")...)

	// The 7 bugs CrashTuner cannot reproduce (§4.1.1).
	notRepro := map[string]string{
		"HBASE-13546": "accessed variable is a node sub-field never printed in logs",
		"HBASE-14621": "accessed variable is a node sub-field never printed in logs",
		"YARN-4502":   "accessed variable is a node sub-field never printed in logs",
		"HBASE-7111":  "meta-info lives in the lower-layer ZooKeeper; wrong node association",
		"HBASE-5722":  "meta-info lives in the lower-layer ZooKeeper; wrong node association",
		"HBASE-5635":  "meta-info lives in the lower-layer ZooKeeper; wrong node association",
		"HDFS-4596":   "MD5 file name not associated with any node instance",
	}
	for i := range bugs {
		if why, ok := notRepro[bugs[i].ID]; ok {
			bugs[i].Reproduced = false
			bugs[i].WhyNot = why
		}
	}

	// The 14 non-timing-sensitive bugs (reproducible by any injection;
	// §2 names MR-3463 and ZK-131 as examples).
	trivialIDs := []string{
		"MR-3463", "ZK-131", "MR-5476", "YARN-3493", "YARN-4047",
		"HDFS-7225", "HDFS-8276", "HBASE-6012", "HBASE-9721", "HBASE-12958",
		"ZK-1653", "YARN-2273b", "HDFS-11291", "HBASE-16093",
	}
	for _, id := range trivialIDs {
		bugs = append(bugs, StudiedBug{ID: id, System: systemOf(id), MetaInfo: "-",
			Scenario: NonTiming, Reproduced: true})
	}
	return bugs
}

func systemOf(id string) string {
	switch {
	case len(id) >= 4 && id[:4] == "YARN":
		return "yarn"
	case len(id) >= 2 && id[:2] == "MR":
		return "yarn"
	case len(id) >= 4 && id[:4] == "HDFS":
		return "hdfs"
	case len(id) >= 5 && id[:5] == "HBASE":
		return "hbase"
	default:
		return "zookeeper"
	}
}

// NewBug is one row of Table 5.
type NewBug struct {
	ID       string
	Count    int // bugs grouped under the issue (YARN-9164(2) etc.)
	Priority string
	Scenario Scenario
	Status   string
	Symptom  string
	MetaInfo string
	// SeededIn names the simulated system and probe point where this
	// reproduction seeds the bug's mechanics ("" when the mechanics are
	// covered by a sibling bug of the same root cause).
	SeededIn string
}

// NewBugs returns the Table 5 rows.
func NewBugs() []NewBug {
	return []NewBug{
		{"YARN-9238", 1, "Critical", PreRead, "Fixed", "Allocating containers to removed ApplicationAttempt", "ApplicationAttemptId",
			"yarn: ResourceManager.allocate#1"},
		{"YARN-9165", 1, "Critical", PreRead, "Fixed", "Scheduling the removed container", "ContainerId", ""},
		{"YARN-9193", 1, "Critical", PreRead, "Fixed", "Allocating container to removed node", "NodeId",
			"yarn: ResourceManager.allocate#4"},
		{"YARN-9164", 2, "Critical", PreRead, "Fixed", "Cluster down due to using the removed node", "NodeId",
			"yarn: ResourceManager.completeContainer#0"},
		{"YARN-9201", 1, "Major", PreRead, "Fixed", "Invalid event for current state of ApplicationAttempt", "ContainerId", ""},
		{"HDFS-14216", 2, "Major", PreRead, "Fixed", "Request fails due to removed node", "DataNodeInfo",
			"hdfs: NameNode.getBlockLocations#1"},
		{"YARN-9194", 1, "Critical", PreRead, "Fixed", "Invalid event for current state of ApplicationAttempt", "ApplicationId", ""},
		{"HBASE-22041", 1, "Critical", PostWrite, "Unresolved", "Master startup node hang", "ServerName",
			"hbase: HMaster.reportServer#0"},
		{"HBASE-22017", 1, "Critical", PreRead, "Fixed", "Master fails to become active due to removed node", "ServerName",
			"hbase: HMaster.activate#0"},
		{"YARN-8650", 2, "Major", PreRead, "Fixed", "Invalid event for current state of Container", "ContainerId", ""},
		{"YARN-9248", 1, "Major", PreRead, "Fixed", "Invalid event for current state of Container", "ApplicationAttemptId", ""},
		{"YARN-8649", 1, "Major", PreRead, "Fixed", "Resource Leak due to removed container", "ApplicationId", ""},
		{"HBASE-21740", 1, "Major", PostWrite, "Fixed", "Shutdown during initialization causing abort", "MetricsRegionServer",
			"hbase: HRegionServer.initMetrics#0 (surfaced through the stop script in this reproduction)"},
		{"HBASE-22050", 1, "Major", PreRead, "Unresolved", "Atomic violation causing shutdown aborts", "RegionInfo",
			"hbase: HMaster.moveRegion#0"},
		{"HDFS-14372", 1, "Major", PreRead, "Fixed", "Shutdown before register causing abort", "BPOfferService",
			"hdfs: DataNode.register#0"},
		{"MR-7178", 1, "Major", PostWrite, "Unresolved", "Shutdown during initialization causing abort", "TaskAttemptId", ""},
		{"HBASE-22023", 1, "Trivial", PostWrite, "Unresolved", "Shutdown during initialization causing abort", "MetricsRegionServer", ""},
		{"CA-15131", 1, "Normal", PreRead, "Unresolved", "Request fails due to using removed node", "InetAddressAndPort",
			"cassandra: StorageProxy.route#0"},
	}
}

// TotalNewBugs returns 21: the Table 5 rows with grouped issues counted
// at their multiplicity.
func TotalNewBugs() int {
	n := 0
	for _, b := range NewBugs() {
		n += b.Count
	}
	return n
}

// FixStats is Table 6.
type FixStats struct {
	Cohort    string
	PatchLOC  float64
	Patches   float64
	DaysToFix float64
	Comments  float64
}

// FixComplexity returns the Table 6 rows.
func FixComplexity() []FixStats {
	return []FixStats{
		{"CREB bugs", 117, 4, 92, 26},
		{"New bugs", 114.8, 3.8, 16.8, 8.6},
	}
}

// K8sBug is one entry of the Kubernetes study (Table 13).
type K8sBug struct {
	PR       string
	MetaInfo string // Node or Pod
}

// KubernetesBugs returns the Table 13 rows.
func KubernetesBugs() []K8sBug {
	node := []string{"#53647", "#68984", "#55262", "#56622", "#69758", "#71063", "#73097", "#78782"}
	pod := []string{"#72895", "#68173", "#68892", "#70898", "#71488", "#72259"}
	var out []K8sBug
	for _, pr := range node {
		out = append(out, K8sBug{PR: pr, MetaInfo: "Node"})
	}
	for _, pr := range pod {
		out = append(out, K8sBug{PR: pr, MetaInfo: "Pod"})
	}
	return out
}

// Counts summarizes the study the way §2 reports it.
type Counts struct {
	Total           int
	TimingSensitive int
	PreRead         int
	PostWrite       int
	NonTiming       int
	Reproduced      int
}

// StudyCounts computes the §2/§4.1.1 headline numbers from the records.
func StudyCounts() Counts {
	var c Counts
	for _, b := range StudiedBugs() {
		c.Total++
		switch b.Scenario {
		case PreRead:
			c.PreRead++
			c.TimingSensitive++
		case PostWrite:
			c.PostWrite++
			c.TimingSensitive++
		default:
			c.NonTiming++
		}
		if b.Reproduced {
			c.Reproduced++
		}
	}
	return c
}

// BySystem groups studied bugs per system, sorted by system name.
func BySystem() map[string][]StudiedBug {
	out := make(map[string][]StudiedBug)
	for _, b := range StudiedBugs() {
		out[b.System] = append(out[b.System], b)
	}
	for _, v := range out {
		sort.Slice(v, func(i, j int) bool { return v[i].ID < v[j].ID })
	}
	return out
}
