package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/systems/cluster"
	"repro/internal/trigger"
)

// PairSummary runs the multiple-crash-event extension (the paper's §6
// future work; see internal/trigger/multi.go) on one system: a capped
// campaign over ordered pairs of dynamic crash points, two injections
// per run.
func PairSummary(r cluster.Runner, seed int64, scale, maxPairs int) string {
	opts := core.Options{Seed: seed, Scale: scale}
	res, matcher := core.AnalysisPhase(r, opts)
	core.ProfilePhase(r, res, opts)
	res.Baseline = trigger.MeasureBaseline(r, seed, scale, 3, 0)
	tester := &trigger.Tester{
		Runner:   r,
		Analysis: res.Analysis,
		Matcher:  matcher,
		Baseline: res.Baseline,
		Seed:     seed,
		Scale:    scale,
	}
	reports := tester.PairCampaign(res.Dynamic.Points, maxPairs)

	var b strings.Builder
	fmt.Fprintf(&b, "Multiple-crash-event extension on %s: %d ordered pairs tested\n",
		r.Name(), len(reports))
	byOutcome := map[trigger.Outcome]int{}
	bugs := map[string]bool{}
	twoFault := 0
	for _, rep := range reports {
		byOutcome[rep.Outcome]++
		if len(rep.Injections) == 2 {
			twoFault++
		}
		if rep.Outcome.IsBug() {
			for _, w := range rep.Witnesses {
				bugs[w] = true
			}
		}
	}
	fmt.Fprintf(&b, "runs with both faults injected: %d\n", twoFault)
	for o := trigger.NotHit; o <= trigger.MaxOutcome; o++ {
		if n := byOutcome[o]; n > 0 {
			fmt.Fprintf(&b, "  %-20s %d\n", o.String(), n)
		}
	}
	var ids []string
	for id := range bugs {
		ids = append(ids, id)
	}
	sortStrings(ids)
	fmt.Fprintf(&b, "bugs witnessed across pair runs: %v\n", ids)
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
