package report

// Recovery-phase campaigns: rerun the injection campaign with the
// trigger's recovery mode — restart the victim after the fault,
// optionally fault it again inside the recovery window — and tabulate
// the recovery-oracle outcomes. This is the reproduction's answer to the
// paper's observation (§2) that many studied crash-recovery bugs need a
// node to come *back*, not just to go away.

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trigger"
)

// RunRecovery executes the recovery-mode pipeline on every system
// (Table 4 systems plus the extensions). rc == nil uses the default
// recovery options (restart 2 s after the fault, no second fault). The
// offline phases come from the artifact cache when one is configured,
// so only the injection runs are paid again.
func (x *Experiments) RunRecovery(rc *trigger.RecoveryOptions) {
	if rc == nil {
		rc = &trigger.RecoveryOptions{}
	}
	systems := x.Systems
	outs := campaign.Run(len(systems), campaign.Options[*core.Result]{
		Workers: x.Workers,
		Sink:    x.Sink,
		Scope:   obs.Scope{Campaign: "recovery-pipelines"},
	}, func(i int) *core.Result {
		r := systems[i]
		opts := core.Options{
			Config: campaign.Config{
				Workers:        x.Workers,
				CheckpointPath: x.checkpointPath(r.Name(), ".recovery.ckpt"),
				Resume:         x.Resume,
				Sink:           x.Sink,
				Recorder:       x.Recorder,
			},
			Seed: x.Seed, Scale: x.Scale,
			Recovery: rc,
		}
		res, matcher := x.analysisPhase(r, opts)
		core.ProfilePhase(r, res, opts)
		core.TestPhase(r, matcher, res, opts)
		return res
	})
	for i, r := range systems {
		x.Recovered[r.Name()] = outs[i]
	}
}

// RecoveryTable renders the recovery-campaign results: how many runs
// restarted their victim and what the recovery oracles found.
func (x *Experiments) RecoveryTable() string {
	t := &tw{}
	t.row("System", "Tested", "Restart runs", "Never rejoined", "Rejoin no work",
		"Dup incarnation", "Harness errors", "Bug reports", "Distinct bugs")
	for _, r := range x.Systems {
		res := x.Recovered[r.Name()]
		if res == nil {
			continue
		}
		s := res.Summary
		t.row(r.Name(),
			fmt.Sprintf("%d", s.Tested),
			fmt.Sprintf("%d", s.Restarts),
			fmt.Sprintf("%d", s.ByOutcome[trigger.NeverRejoined]),
			fmt.Sprintf("%d", s.ByOutcome[trigger.RejoinNoWork]),
			fmt.Sprintf("%d", s.ByOutcome[trigger.DuplicateIncarnation]),
			fmt.Sprintf("%d", s.HarnessErrors),
			fmt.Sprintf("%d", s.Bugs),
			fmt.Sprintf("%d", s.DistinctBugs))
	}
	return "Recovery campaign: injections followed by victim restart (recovery oracles per §3.2.2 extension)\n" + t.String()
}
