package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/systems/all"
)

func TestStaticTables(t *testing.T) {
	for name, s := range map[string]string{
		"table1":  Table1(),
		"table3":  Table3(),
		"table4":  Table4(),
		"table6":  Table6(),
		"table13": Table13(),
		"repro":   ReproSummary(),
	} {
		if len(s) < 50 {
			t.Errorf("%s suspiciously short: %q", name, s)
		}
	}
	if !strings.Contains(Table1(), "YARN-5918") || !strings.Contains(Table1(), "HBASE-2525") {
		t.Error("Table 1 missing studied bugs")
	}
	if !strings.Contains(Table3(), "copyInto") {
		t.Error("Table 3 missing keywords")
	}
	if !strings.Contains(Table4(), "WordCount+curl") {
		t.Error("Table 4 missing workloads")
	}
	if !strings.Contains(Table13(), "#53647") {
		t.Error("Table 13 missing PRs")
	}
	if !strings.Contains(ReproSummary(), "59/66") {
		t.Errorf("repro summary wrong: %s", ReproSummary())
	}
}

func TestTable2FromYarn(t *testing.T) {
	r, err := all.ByName("yarn")
	if err != nil {
		t.Fatal(err)
	}
	res, _ := core.AnalysisPhase(r, core.Options{Seed: 11})
	s := Table2(res.Analysis)
	if !strings.Contains(s, "yarn.api.records.NodeId*") {
		t.Errorf("Table 2 missing log-annotated NodeId:\n%s", s)
	}
	if !strings.Contains(s, "NodeIdPBImpl") {
		t.Errorf("Table 2 missing derived subtype:\n%s", s)
	}
}

func TestExperimentTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	x := NewExperiments(11, 1, 30)
	x.RunPipelines()
	x.RunBaselines()

	for name, s := range map[string]string{
		"table5":   x.Table5Live(),
		"table7":   x.Table7(),
		"table8":   x.Table8(),
		"table9":   x.Table9(),
		"table10":  x.Table10(),
		"table11":  x.Table11(),
		"table12":  x.Table12(),
		"timeouts": x.Timeouts(),
		"summary":  x.CampaignSummary(),
	} {
		if len(s) < 60 {
			t.Errorf("%s suspiciously short: %q", name, s)
		}
	}
	// The live Table 5 must mark every seeded bug as detected.
	if strings.Contains(x.Table5Live(), "MISSED") {
		t.Errorf("Table 5 reports missed seeded bugs:\n%s", x.Table5Live())
	}
	// Table 10's totals line carries the percentage shape of the paper.
	if !strings.Contains(x.Table10(), "%") {
		t.Error("Table 10 missing percentages")
	}
}

func TestFigMetaInfo(t *testing.T) {
	r, err := all.ByName("yarn")
	if err != nil {
		t.Fatal(err)
	}
	s := FigMetaInfo(r, 11, 1)
	if !strings.Contains(s, "node1:45454") || !strings.Contains(s, "->") && !strings.Contains(s, "HashMap") {
		t.Errorf("figure missing node values:\n%s", s)
	}
	if !strings.Contains(s, "container_") {
		t.Errorf("figure missing associated values:\n%s", s)
	}
}
