// Package report renders every table and figure of the paper's
// evaluation (§2 and §4) from this reproduction's data: the registry for
// census tables, and live pipeline/baseline results for the experiment
// tables. All renderers return plain text shaped like the paper's
// tables.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/metainfo"
	"repro/internal/registry"
	"repro/internal/systems/all"
)

// tw is a minimal text-table writer.
type tw struct {
	b     strings.Builder
	width []int
	rows  [][]string
}

func (t *tw) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tw) String() string {
	for _, r := range t.rows {
		for i, c := range r {
			if i >= len(t.width) {
				t.width = append(t.width, 0)
			}
			if len(c) > t.width[i] {
				t.width[i] = len(c)
			}
		}
	}
	for ri, r := range t.rows {
		for i, c := range r {
			fmt.Fprintf(&t.b, "%-*s", t.width[i]+2, c)
		}
		t.b.WriteString("\n")
		if ri == 0 {
			for i := range t.width {
				t.b.WriteString(strings.Repeat("-", t.width[i]+2))
				_ = i
			}
			t.b.WriteString("\n")
		}
	}
	return t.b.String()
}

// Table1 renders the studied timing-sensitive bugs by meta-info.
func Table1() string {
	t := &tw{}
	t.row("System", "Meta-info", "Bugs")
	type key struct{ system, meta string }
	groups := map[key][]string{}
	for _, b := range registry.StudiedBugs() {
		if b.Scenario == registry.NonTiming {
			continue
		}
		k := key{b.System, b.MetaInfo}
		groups[k] = append(groups[k], b.ID)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].system != keys[j].system {
			return keys[i].system < keys[j].system
		}
		return keys[i].meta < keys[j].meta
	})
	for _, k := range keys {
		ids := groups[k]
		sort.Strings(ids)
		t.row(k.system, k.meta, strings.Join(ids, " "))
	}
	c := registry.StudyCounts()
	return fmt.Sprintf("Table 1: the %d studied timing-sensitive bugs (%d pre-read, %d post-write; %d non-timing-sensitive bugs omitted)\n%s",
		c.TimingSensitive, c.PreRead, c.PostWrite, c.NonTiming, t.String())
}

// Table2 renders the meta-info types inferred for a system, grouped by
// kind, with log-identified types annotated with *.
func Table2(a *metainfo.Analysis) string {
	t := &tw{}
	t.row("Meta-info", "Types")
	kinds := a.Kinds()
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		var cells []string
		for _, ti := range kinds[k] {
			star := ""
			if ti.FromLog {
				star = "*"
			}
			cells = append(cells, string(ti.Type)+star)
		}
		t.row(k, strings.Join(cells, " "))
	}
	return "Table 2: meta-info types (log-identified types annotated with *)\n" + t.String()
}

// Table3 renders the collection-operation keywords.
func Table3() string {
	t := &tw{}
	t.row("Access", "Keywords")
	t.row("read", strings.Join(ir.CollReadKeywords, ", "))
	t.row("write", strings.Join(ir.CollWriteKeywords, ", "))
	return "Table 3: keywords of read and write operations for collection types\n" + t.String()
}

// Table4 renders the systems under test.
func Table4() string {
	t := &tw{}
	t.row("System", "Version", "Workload")
	versions := all.Versions()
	for _, r := range all.Runners() {
		t.row(r.Name(), versions[r.Name()], r.Workload())
	}
	return "Table 4: systems under test\n" + t.String()
}

// Table5 renders the new-bug table; found maps paper bug IDs to whether
// this reproduction's campaign detected the seeded counterpart.
func Table5(found map[string]bool) string {
	t := &tw{}
	t.row("Bug ID", "Priority", "Scenario", "Status", "Symptom", "Meta-info", "Detected here")
	for _, b := range registry.NewBugs() {
		id := b.ID
		if b.Count > 1 {
			id = fmt.Sprintf("%s(%d)", b.ID, b.Count)
		}
		det := "-"
		if b.SeededIn != "" {
			if found[b.ID] {
				det = "yes"
			} else {
				det = "MISSED"
			}
		}
		t.row(id, b.Priority, string(b.Scenario), b.Status, b.Symptom, b.MetaInfo, det)
	}
	return fmt.Sprintf("Table 5: the %d new bugs (rows with '-' are siblings of a seeded root cause; see registry.NewBugs)\n%s",
		registry.TotalNewBugs(), t.String())
}

// Table6 renders the fix-complexity comparison.
func Table6() string {
	t := &tw{}
	t.row("Cohort", "LOC of patch", "# patches", "# days to fix", "# comments")
	for _, f := range registry.FixComplexity() {
		t.row(f.Cohort,
			fmt.Sprintf("%.1f", f.PatchLOC),
			fmt.Sprintf("%.1f", f.Patches),
			fmt.Sprintf("%.1f", f.DaysToFix),
			fmt.Sprintf("%.1f", f.Comments))
	}
	return "Table 6: complexity of fixing newly detected bugs vs CREB bugs\n" + t.String()
}

// Table13 renders the Kubernetes study.
func Table13() string {
	t := &tw{}
	t.row("Meta-info", "Kubernetes PRs")
	groups := map[string][]string{}
	for _, b := range registry.KubernetesBugs() {
		groups[b.MetaInfo] = append(groups[b.MetaInfo], b.PR)
	}
	for _, k := range []string{"Node", "Pod"} {
		t.row(k, strings.Join(groups[k], " "))
	}
	return "Table 13: the studied scheduling-related crash-recovery bugs in Kubernetes\n" + t.String()
}

// ReproSummary renders the §4.1.1 reproduction ledger.
func ReproSummary() string {
	c := registry.StudyCounts()
	var b strings.Builder
	fmt.Fprintf(&b, "Reproducing existing bugs (§4.1.1): %d/%d reproduced (%d of the %d timing-sensitive, plus %d trivially-triggered non-timing bugs)\n",
		c.Reproduced, c.Total, c.Reproduced-c.NonTiming, c.TimingSensitive, c.NonTiming)
	b.WriteString("Not reproduced:\n")
	for _, bug := range registry.StudiedBugs() {
		if !bug.Reproduced {
			fmt.Fprintf(&b, "  %-12s %s\n", bug.ID, bug.WhyNot)
		}
	}
	return b.String()
}
