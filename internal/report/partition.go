package report

// Partition-family campaigns: rerun the injection campaign with the
// trigger's partition mode — cut the stash-resolved victim off instead
// of crashing it — and tabulate the split-brain / stale-read /
// never-heals oracle outcomes. This is the reproduction's CoFI-flavored
// extension: the same meta-info locates the victim, but the fault is a
// network cut the cluster must survive and then reconcile after the
// heal.

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trigger"
)

// RunPartition executes the partition-mode pipeline on every system.
// po == nil uses the default partition options (drop-mode cut, healed
// after the default interval). The offline phases come from the
// artifact cache when one is configured, so only the injection runs are
// paid again.
func (x *Experiments) RunPartition(po *trigger.PartitionOptions) {
	if po == nil {
		po = &trigger.PartitionOptions{}
	}
	systems := x.Systems
	outs := campaign.Run(len(systems), campaign.Options[*core.Result]{
		Workers: x.Workers,
		Sink:    x.Sink,
		Scope:   obs.Scope{Campaign: "partition-pipelines"},
	}, func(i int) *core.Result {
		r := systems[i]
		opts := core.Options{
			Config: campaign.Config{
				Workers:        x.Workers,
				CheckpointPath: x.checkpointPath(r.Name(), ".partition.ckpt"),
				Resume:         x.Resume,
				Sink:           x.Sink,
				Recorder:       x.Recorder,
			},
			Seed: x.Seed, Scale: x.Scale,
			Partition: po,
		}
		res, matcher := x.analysisPhase(r, opts)
		core.ProfilePhase(r, res, opts)
		core.TestPhase(r, matcher, res, opts)
		return res
	})
	for i, r := range systems {
		x.Partitioned[r.Name()] = outs[i]
	}
}

// PartitionTable renders the partition-campaign results: how many runs
// opened and healed a cut and what the partition oracles found.
func (x *Experiments) PartitionTable() string {
	t := &tw{}
	t.row("System", "Tested", "Cut runs", "Healed", "Guided", "Split brain",
		"Stale read", "Never heals", "Harness errors", "Bug reports", "Distinct bugs")
	for _, r := range x.Systems {
		res := x.Partitioned[r.Name()]
		if res == nil {
			continue
		}
		s := res.Summary
		t.row(r.Name(),
			fmt.Sprintf("%d", s.Tested),
			fmt.Sprintf("%d", s.Partitions),
			fmt.Sprintf("%d", s.Heals),
			fmt.Sprintf("%d", s.Guided),
			fmt.Sprintf("%d", s.ByOutcome[trigger.SplitBrain]),
			fmt.Sprintf("%d", s.ByOutcome[trigger.StaleRead]),
			fmt.Sprintf("%d", s.ByOutcome[trigger.NeverHeals]),
			fmt.Sprintf("%d", s.HarnessErrors),
			fmt.Sprintf("%d", s.Bugs),
			fmt.Sprintf("%d", s.DistinctBugs))
	}
	return "Partition campaign: network cuts at crash points (split-brain / stale-read / never-heals oracles)\n" + t.String()
}
