package report

import (
	"path/filepath"

	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/dslog"
	"repro/internal/logparse"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/stash"
	"repro/internal/systems/all"
	"repro/internal/systems/cluster"
	"repro/internal/trigger"
)

// Experiments holds everything needed to render the run-based tables.
type Experiments struct {
	Seed       int64
	Scale      int
	RandomRuns int
	// Workers bounds the campaign worker pools: systems fan out across
	// it in RunPipelines/RunBaselines, and each system's campaign fans
	// its runs out with the same setting. Zero or negative means one
	// worker per CPU; 1 reproduces the fully sequential execution. All
	// tables are identical for any worker count.
	Workers int
	// Sink, when non-nil, observes every campaign the experiment set
	// runs: the outer per-system fan-outs and each system's own
	// injection campaigns all emit obs events into it. Sink
	// implementations must be safe for concurrent use.
	Sink obs.Sink
	// Recorder, when non-nil, receives one run record per completed
	// injection run across every campaign the experiment set executes
	// (pipelines, baselines and recovery), feeding the triage store.
	// Implementations must be safe for concurrent use: campaigns for
	// different systems deliver their records in parallel.
	Recorder campaign.RunRecorder

	// Analyze runs the failure-mode analytics over every system's test
	// campaign (core.Options.Analyze): discovered modes feed the
	// Recorder as advisory failmode records, and the campaign summary
	// gains a silent-failure-suspect column. Advisory only —
	// Summary.Bugs and every numbered table are unchanged.
	Analyze bool

	// Artifacts, when non-nil, memoizes the offline AnalysisPhase across
	// pipelines (and across experiment sets sharing the cache), so the
	// deterministic offline artifacts are computed once per system. The
	// rendered tables are identical with and without the cache.
	Artifacts *core.ArtifactCache

	// CheckpointDir, when non-empty, makes every campaign resumable:
	// each system's test phase checkpoints to <dir>/<system>.ckpt (and
	// <dir>/<system>.recovery.ckpt for the recovery campaigns). With
	// Resume set, a rerun skips the points already on disk and renders
	// byte-identical tables.
	CheckpointDir string
	Resume        bool

	Systems  []cluster.Runner
	Results  map[string]*core.Result
	Matchers map[string]*logparse.Matcher
	Random   map[string]*baseline.Result
	IO       map[string]*baseline.Result
	// Recovered holds the recovery-mode pipeline results (RunRecovery)
	// and Partitioned the partition-mode ones (RunPartition), keyed like
	// Results.
	Recovered   map[string]*core.Result
	Partitioned map[string]*core.Result
}

// NewExperiments prepares an experiment set over all systems.
func NewExperiments(seed int64, scale, randomRuns int) *Experiments {
	if scale < 1 {
		scale = 1
	}
	if randomRuns <= 0 {
		randomRuns = 100
	}
	return &Experiments{
		Seed:        seed,
		Scale:       scale,
		RandomRuns:  randomRuns,
		Systems:     all.Runners(),
		Results:     make(map[string]*core.Result),
		Matchers:    make(map[string]*logparse.Matcher),
		Random:      make(map[string]*baseline.Result),
		IO:          make(map[string]*baseline.Result),
		Recovered:   make(map[string]*core.Result),
		Partitioned: make(map[string]*core.Result),
	}
}

// checkpointPath names a campaign's checkpoint file; empty when
// checkpointing is off.
func (x *Experiments) checkpointPath(system, suffix string) string {
	if x.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(x.CheckpointDir, system+suffix)
}

// RunPipelines executes the CrashTuner pipeline on every system. The
// per-system pipelines fan out across the worker pool (each system's own
// campaign additionally parallelizes its injection runs); results land
// in the maps keyed by system name, so rendering order — and therefore
// every table — is independent of scheduling.
func (x *Experiments) RunPipelines() {
	type pipelineOut struct {
		res     *core.Result
		matcher *logparse.Matcher
	}
	outs := campaign.Run(len(x.Systems), campaign.Options[pipelineOut]{
		Workers: x.Workers,
		Sink:    x.Sink,
		Scope:   obs.Scope{Campaign: "pipelines"},
	}, func(i int) pipelineOut {
		r := x.Systems[i]
		opts := core.Options{
			Config: campaign.Config{
				Workers:        x.Workers,
				CheckpointPath: x.checkpointPath(r.Name(), ".ckpt"),
				Resume:         x.Resume,
				Sink:           x.Sink,
				Recorder:       x.Recorder,
			},
			Seed: x.Seed, Scale: x.Scale,
			Analyze: x.Analyze,
		}
		res, matcher := x.analysisPhase(r, opts)
		core.ProfilePhase(r, res, opts)
		core.TestPhase(r, matcher, res, opts)
		return pipelineOut{res, matcher}
	})
	for i, r := range x.Systems {
		x.Results[r.Name()] = outs[i].res
		x.Matchers[r.Name()] = outs[i].matcher
	}
}

// analysisPhase dispatches to the artifact cache when one is configured.
func (x *Experiments) analysisPhase(r cluster.Runner, opts core.Options) (*core.Result, *logparse.Matcher) {
	if x.Artifacts != nil {
		return x.Artifacts.AnalysisPhase(r, opts)
	}
	return core.AnalysisPhase(r, opts)
}

// RunBaselines executes the random and IO-injection campaigns, fanning
// the systems out across the worker pool.
func (x *Experiments) RunBaselines() {
	type baselineOut struct {
		random, io *baseline.Result
	}
	outs := campaign.Run(len(x.Systems), campaign.Options[baselineOut]{
		Workers: x.Workers,
		Sink:    x.Sink,
		Scope:   obs.Scope{Campaign: "baselines"},
	}, func(i int) baselineOut {
		r := x.Systems[i]
		res := x.Results[r.Name()]
		if res == nil {
			return baselineOut{}
		}
		opts := baseline.Options{Seed: x.Seed, Scale: x.Scale, Runs: x.RandomRuns}
		opts.Workers = x.Workers
		opts.Sink = x.Sink
		opts.Recorder = x.Recorder
		ro, io := opts, opts
		ro.CheckpointPath = x.checkpointPath(r.Name(), ".random.ckpt")
		ro.Resume = x.Resume
		io.CheckpointPath = x.checkpointPath(r.Name(), ".io.ckpt")
		io.Resume = x.Resume
		return baselineOut{
			random: baseline.Random(r, res.Baseline, ro),
			io:     baseline.IOInjection(r, x.Matchers[r.Name()], res.Baseline, io),
		}
	})
	for i, r := range x.Systems {
		if outs[i].random == nil {
			continue
		}
		x.Random[r.Name()] = outs[i].random
		x.IO[r.Name()] = outs[i].io
	}
}

// FoundBugs returns the paper bug IDs whose seeded counterparts the
// campaigns detected.
func (x *Experiments) FoundBugs() map[string]bool {
	out := map[string]bool{}
	for _, res := range x.Results {
		for _, id := range res.Summary.WitnessedBugs {
			out[id] = true
		}
	}
	return out
}

// Table5Live renders Table 5 with live detection results.
func (x *Experiments) Table5Live() string { return Table5(x.FoundBugs()) }

// Table7 renders the random crash injection results.
func (x *Experiments) Table7() string {
	t := &tw{}
	t.row("System", "Runs", "Time(virt)", "Bug runs", "Distinct bugs (hits)")
	for _, r := range x.Systems {
		b := x.Random[r.Name()]
		if b == nil {
			continue
		}
		t.row(r.Name(),
			fmt.Sprintf("%d", b.Runs),
			b.VirtualTime.String(),
			fmt.Sprintf("%d", b.BugRuns),
			bugHits(b))
	}
	return "Table 7: results of random crash injection\n" + t.String()
}

func bugHits(b *baseline.Result) string {
	if len(b.BugHits) == 0 {
		return "0"
	}
	var cells []string
	for _, id := range b.DistinctBugs() {
		cells = append(cells, fmt.Sprintf("%s(%d)", id, b.BugHits[id]))
	}
	return strings.Join(cells, " ")
}

// Table8 renders the IO census: IR-side statics plus profiled dynamic IO
// points (log emissions as the observable IO of the simulation).
func (x *Experiments) Table8() string {
	t := &tw{}
	t.row("System", "# IO classes", "# IO methods", "# Static IO points", "# Dynamic IO points")
	totals := [4]int{}
	for _, r := range x.Systems {
		c := r.Program().IOCensus()
		res := x.Results[r.Name()]
		dyn := 0
		if res != nil {
			pts := baseline.CollectIOPoints(r, x.Matchers[r.Name()], x.Seed, x.Scale, sim.Hour)
			dyn = len(pts)
		}
		t.row(r.Name(), fmt.Sprintf("%d", c.IOClasses), fmt.Sprintf("%d", c.IOMethods),
			fmt.Sprintf("%d", c.StaticIOs), fmt.Sprintf("%d", dyn))
		totals[0] += c.IOClasses
		totals[1] += c.IOMethods
		totals[2] += c.StaticIOs
		totals[3] += dyn
	}
	t.row("Total", fmt.Sprintf("%d", totals[0]), fmt.Sprintf("%d", totals[1]),
		fmt.Sprintf("%d", totals[2]), fmt.Sprintf("%d", totals[3]))
	return "Table 8: number of IO classes, methods and IO points\n" + t.String()
}

// Table9 renders the IO fault injection results.
func (x *Experiments) Table9() string {
	t := &tw{}
	t.row("System", "Runs", "Time(virt)", "Bug runs", "Distinct bugs (hits)")
	for _, r := range x.Systems {
		b := x.IO[r.Name()]
		if b == nil {
			continue
		}
		t.row(r.Name(),
			fmt.Sprintf("%d", b.Runs),
			b.VirtualTime.String(),
			fmt.Sprintf("%d", b.BugRuns),
			bugHits(b))
	}
	return "Table 9: results of IO fault injection\n" + t.String()
}

// Table10 renders the meta-info/crash-point census.
func (x *Experiments) Table10() string {
	t := &tw{}
	t.row("System", "Types", "Fields", "Access Points",
		"Meta Types", "Meta Fields", "Meta Access", "Static CPs", "Dynamic CPs")
	var tot [8]int
	for _, r := range x.Systems {
		res := x.Results[r.Name()]
		if res == nil {
			continue
		}
		total := r.Program().Census()
		meta := res.Analysis.Census()
		static := len(res.Static.Points)
		dyn := len(res.Dynamic.Points)
		t.row(r.Name(),
			fmt.Sprintf("%d", total.Types), fmt.Sprintf("%d", total.Fields),
			fmt.Sprintf("%d", total.AccessPoints),
			fmt.Sprintf("%d", meta.Types), fmt.Sprintf("%d", meta.Fields),
			fmt.Sprintf("%d", meta.AccessPoints),
			fmt.Sprintf("%d", static), fmt.Sprintf("%d", dyn))
		for i, v := range []int{total.Types, total.Fields, total.AccessPoints,
			meta.Types, meta.Fields, meta.AccessPoints, static, dyn} {
			tot[i] += v
		}
	}
	t.row("Total",
		fmt.Sprintf("%d", tot[0]), fmt.Sprintf("%d", tot[1]), fmt.Sprintf("%d", tot[2]),
		fmt.Sprintf("%d (%.2f%%)", tot[3], pct(tot[3], tot[0])),
		fmt.Sprintf("%d (%.2f%%)", tot[4], pct(tot[4], tot[1])),
		fmt.Sprintf("%d (%.2f%%)", tot[5], pct(tot[5], tot[2])),
		fmt.Sprintf("%d (%.2f%%)", tot[6], pct(tot[6], tot[2])),
		fmt.Sprintf("%d (%.2f%%)", tot[7], pct(tot[7], tot[2])))
	return "Table 10: types, fields, access points and crash points\n" + t.String()
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Table11 renders per-phase times: wall-clock for analysis/profiling and
// both wall-clock and virtual time for testing.
func (x *Experiments) Table11() string {
	t := &tw{}
	t.row("System", "Analysis(wall)", "Profile(wall)", "Test(wall)", "Test(virtual)", "Points tested")
	for _, r := range x.Systems {
		res := x.Results[r.Name()]
		if res == nil {
			continue
		}
		t.row(r.Name(),
			res.Timing.Analysis.Round(time.Millisecond).String(),
			res.Timing.Profile.Round(time.Millisecond).String(),
			res.Timing.Test.Round(time.Millisecond).String(),
			res.Timing.VirtualTest.String(),
			fmt.Sprintf("%d", res.Summary.Tested))
	}
	return "Table 11: analysis and testing times (virtual time plays the paper's cluster hours)\n" + t.String()
}

// Table12 renders the optimization pruning counts.
func (x *Experiments) Table12() string {
	t := &tw{}
	t.row("System", "Constructor", "Unused", "Sanity check")
	for _, r := range x.Systems {
		res := x.Results[r.Name()]
		if res == nil {
			continue
		}
		p := res.Static.Pruned
		t.row(r.Name(), fmt.Sprintf("%d", p.Constructor), fmt.Sprintf("%d", p.Unused),
			fmt.Sprintf("%d", p.SanityCheck))
	}
	return "Table 12: crash points pruned by each optimization\n" + t.String()
}

// Timeouts renders the §4.1.3 timeout issues observed in the campaigns.
func (x *Experiments) Timeouts() string {
	var b strings.Builder
	b.WriteString("Timeout issues (§4.1.3): runs that finish but exceed 4x the fault-free duration\n")
	n := 0
	for _, r := range x.Systems {
		res := x.Results[r.Name()]
		if res == nil {
			continue
		}
		for _, rep := range res.Reports {
			if rep.Outcome == trigger.TimeoutIssue {
				n++
				fmt.Fprintf(&b, "  %-10s %-60s finished at %v (baseline %v)\n",
					r.Name(), rep.Dyn.Point, rep.Duration, res.Baseline.Duration)
			}
		}
	}
	fmt.Fprintf(&b, "  total: %d timeout issues\n", n)
	return b.String()
}

// FigMetaInfo reproduces Figs. 1/5(d)/6: it profiles the given system
// once and dumps the recorded runtime meta-info (node set + value→node
// associations).
func FigMetaInfo(r cluster.Runner, seed int64, scale int) string {
	res, matcher := core.AnalysisPhase(r, core.Options{Seed: seed, Scale: scale})
	st := stash.New(r.Hosts(), matcher, res.Analysis)
	logs := dslog.NewRoot()
	st.Attach(logs)
	run := r.NewRun(cluster.Config{Seed: seed, Scale: scale, Probe: probe.New(), Logs: logs})
	cluster.Drive(run, sim.Hour)

	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5(d)/6: runtime meta-info of one %s run\n", r.Name())
	fmt.Fprintf(&b, "HashSet (nodes): %v\n", st.Nodes())
	b.WriteString("HashMap (value -> node):\n")
	assoc := st.Associations()
	keys := make([]string, 0, len(assoc))
	for k := range assoc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-40s %s\n", k, assoc[k])
	}
	fmt.Fprintf(&b, "(%d log instances seen, %d meta-info values forwarded)\n", st.Instances, st.Forwarded)
	return b.String()
}

// CampaignSummary renders the per-system detection summary (the §4.1.2
// headline).
func (x *Experiments) CampaignSummary() string {
	t := &tw{}
	t.row("System", "Dynamic CPs", "Tested", "Bug reports", "Distinct bugs", "Timeout issues", "Modes", "Silent?", "Seeded bugs detected")
	for _, r := range x.Systems {
		res := x.Results[r.Name()]
		if res == nil {
			continue
		}
		// The analytics columns are advisory: discovered failure modes
		// and anomalous-but-green (silent-failure suspect) runs. "-"
		// means analysis was off; they never feed Summary.Bugs.
		modes, silent := "-", "-"
		if res.Failmode != nil {
			modes = fmt.Sprintf("%d", res.Failmode.TotalModes())
			silent = fmt.Sprintf("%d", res.Failmode.TotalAnomalies())
		}
		t.row(r.Name(),
			fmt.Sprintf("%d", len(res.Dynamic.Points)),
			fmt.Sprintf("%d", res.Summary.Tested),
			fmt.Sprintf("%d", res.Summary.Bugs),
			fmt.Sprintf("%d", res.Summary.DistinctBugs),
			fmt.Sprintf("%d", res.Summary.TimeoutIssues),
			modes, silent,
			strings.Join(res.Summary.WitnessedBugs, " "))
	}
	// Mirror the §2/§4.1.1 ledger too.
	counts := registry.StudyCounts()
	return fmt.Sprintf("CrashTuner campaign summary (paper: 21 new bugs, 59/66 existing reproduced — here %d/%d existing reproduced in the registry)\n%s",
		counts.Reproduced, counts.Total, t.String())
}
