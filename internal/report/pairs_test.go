package report

import (
	"strings"
	"testing"

	"repro/internal/systems/toysys"
)

func TestPairSummary(t *testing.T) {
	s := PairSummary(&toysys.Runner{}, 7, 1, 6)
	if !strings.Contains(s, "ordered pairs tested") {
		t.Fatalf("summary malformed:\n%s", s)
	}
	if !strings.Contains(s, "both faults injected") {
		t.Errorf("missing two-fault count:\n%s", s)
	}
	// The pair campaign over the toy system still surfaces its bugs.
	if !strings.Contains(s, "TOY-") {
		t.Errorf("no toy bugs witnessed in pair runs:\n%s", s)
	}
}

func TestTableWriterAlignment(t *testing.T) {
	w := &tw{}
	w.row("a", "bb", "ccc")
	w.row("dddd", "e", "f")
	out := w.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All rows share the same width.
	if len(lines[0]) != len(lines[2]) {
		t.Errorf("misaligned table:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing header rule:\n%s", out)
	}
}
