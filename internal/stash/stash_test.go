package stash

import (
	"testing"

	"repro/internal/dslog"
	"repro/internal/ir"
	"repro/internal/logparse"
	"repro/internal/metainfo"
	"repro/internal/sim"
)

var hosts = []string{"node0", "node1", "node2", "node3", "node4"}

// stashProgram has a node-registration statement, a container-assignment
// statement, and a noise statement whose argument is a plain string.
func stashProgram() *ir.Program {
	p := ir.NewProgram("st")
	p.AddClass(&ir.Class{Name: "s.NodeId"})
	p.AddClass(&ir.Class{Name: "s.ContainerId"})
	p.AddClass(&ir.Class{Name: "s.RM", Methods: []*ir.Method{{Name: "run", Instrs: []*ir.Instr{
		{Op: ir.OpLog, Log: &ir.LogStmt{Level: "info",
			Segments: []string{"registered node ", ""},
			Args:     []ir.LogArg{{Name: "nodeId", Type: "s.NodeId"}}}},
		{Op: ir.OpLog, Log: &ir.LogStmt{Level: "info",
			Segments: []string{"assigned ", " to node ", ""},
			Args: []ir.LogArg{
				{Name: "containerId", Type: "s.ContainerId"},
				{Name: "nodeId", Type: "s.NodeId"},
			}}},
		{Op: ir.OpLog, Log: &ir.LogStmt{Level: "info",
			Segments: []string{"config value ", ""},
			Args:     []ir.LogArg{{Name: "v", Type: "java.lang.String"}}}},
		{Op: ir.OpReturn},
	}}}})
	return p.Build()
}

func buildStash(t *testing.T) (*Stash, *dslog.Root, *sim.Engine) {
	t.Helper()
	p := stashProgram()
	matcher := logparse.NewMatcher(logparse.ExtractPatterns(p))
	// Offline phase: derive the analysis from a profiling run's lines.
	offline := []dslog.Record{
		{Text: "registered node node1:42"},
		{Text: "assigned container_9 to node node1:42"},
	}
	var matches []*logparse.Match
	session := matcher.NewSession()
	for _, r := range offline {
		if m := session.Match(r); m != nil {
			matches = append(matches, m)
		}
	}
	analysis := metainfo.Infer(p, matches, hosts)
	if !analysis.IsMetaType("s.ContainerId") {
		t.Fatal("offline analysis did not infer ContainerId")
	}
	s := New(hosts, matcher, analysis)
	e := sim.NewEngine(1)
	root := dslog.NewRoot()
	s.Attach(root)
	return s, root, e
}

func TestOnlineAssociation(t *testing.T) {
	s, root, e := buildStash(t)
	n1 := e.AddNode("node1", 42)
	lg := root.Logger(e, n1.ID, "RM")
	lg.Info("registered node node1:42")
	lg.Info("assigned container_7 to node node1:42")

	if n, ok := s.Query("container_7"); !ok || n != "node1:42" {
		t.Errorf("Query(container_7) = %v,%v", n, ok)
	}
	if n, ok := s.Query("node1:42"); !ok || n != "node1:42" {
		t.Errorf("Query(node) = %v,%v", n, ok)
	}
	if _, ok := s.Query("unknown"); ok {
		t.Error("unknown value resolved")
	}
	if len(s.Nodes()) != 1 {
		t.Errorf("nodes = %v", s.Nodes())
	}
}

func TestFilterDropsPlainValues(t *testing.T) {
	s, root, e := buildStash(t)
	n1 := e.AddNode("node1", 42)
	lg := root.Logger(e, n1.ID, "RM")
	lg.Info("config value tuning-knob")
	if s.Forwarded != 0 {
		t.Errorf("forwarded = %d, want 0 (plain string filtered)", s.Forwarded)
	}
	if _, ok := s.Query("tuning-knob"); ok {
		t.Error("plain value entered the stash")
	}
	// Unmatched garbage lines are counted but forward nothing.
	lg.Info("garbage that matches nothing")
	if s.Instances != 2 {
		t.Errorf("instances = %d, want 2", s.Instances)
	}
}

func TestQueryAny(t *testing.T) {
	s, root, e := buildStash(t)
	n1 := e.AddNode("node1", 42)
	lg := root.Logger(e, n1.ID, "RM")
	lg.Info("registered node node1:42")
	lg.Info("assigned container_5 to node node1:42")
	if n, ok := s.QueryAny([]string{"nope", "container_5"}); !ok || n != "node1:42" {
		t.Errorf("QueryAny = %v,%v", n, ok)
	}
	if _, ok := s.QueryAny([]string{"nope", "alsono"}); ok {
		t.Error("QueryAny resolved unknown values")
	}
	if _, ok := s.QueryAny(nil); ok {
		t.Error("QueryAny(nil) resolved")
	}
}

func TestNodeValuesAlwaysForwarded(t *testing.T) {
	// A node value logged through a plain-string argument still passes
	// the filter (host-name matching comes first).
	s, root, e := buildStash(t)
	n1 := e.AddNode("node2", 7)
	root.Logger(e, n1.ID, "RM").Info("config value node2:7")
	if s.Forwarded != 1 {
		t.Errorf("forwarded = %d, want 1", s.Forwarded)
	}
	if len(s.Nodes()) != 1 || s.Nodes()[0] != "node2:7" {
		t.Errorf("nodes = %v", s.Nodes())
	}
}

func TestAssociationsExposed(t *testing.T) {
	s, root, e := buildStash(t)
	n1 := e.AddNode("node1", 42)
	lg := root.Logger(e, n1.ID, "RM")
	lg.Info("registered node node1:42")
	lg.Info("assigned c_1 to node node1:42")
	a := s.Associations()
	if a["c_1"] != "node1:42" {
		t.Errorf("associations = %v", a)
	}
}
