package stash

import "testing"

// TestViewMatchesStashAtCapture: a snapshot answers exactly what the
// live stash answered at capture time, and stays frozen afterwards.
func TestViewMatchesStashAtCapture(t *testing.T) {
	s, root, e := buildStash(t)
	n1 := e.AddNode("node1", 42)
	lg := root.Logger(e, n1.ID, "RM")
	lg.Info("registered node node1:42")
	lg.Info("assigned container_1 to node node1:42")

	view := s.Snapshot()
	if n, ok := view.Query("container_1"); !ok || n != "node1:42" {
		t.Fatalf("view.Query(container_1) = %q, %v", n, ok)
	}
	if n, ok := view.QueryAny([]string{"unknown", "container_1"}); !ok || n != "node1:42" {
		t.Fatalf("view.QueryAny = %q, %v", n, ok)
	}

	// Post-capture traffic is invisible to the view, visible live.
	n2 := e.AddNode("node2", 43)
	lg2 := root.Logger(e, n2.ID, "RM")
	lg2.Info("registered node node2:43")
	lg2.Info("assigned container_2 to node node2:43")
	if _, ok := view.Query("container_2"); ok {
		t.Fatal("view sees a post-capture association")
	}
	if n, ok := s.Query("container_2"); !ok || n != "node2:43" {
		t.Fatalf("live stash lost post-capture association: %q, %v", n, ok)
	}
	if _, ok := view.Query("nonexistent"); ok {
		t.Fatal("view resolved an unknown value")
	}
	if _, ok := view.QueryAny(nil); ok {
		t.Fatal("view.QueryAny(nil) resolved")
	}
}

// TestViewIsConcurrentlyReadable: many goroutines querying one view race
// nothing (exercised under -race in CI) while the live stash keeps
// ingesting.
func TestViewIsConcurrentlyReadable(t *testing.T) {
	s, root, e := buildStash(t)
	n1 := e.AddNode("node1", 42)
	lg := root.Logger(e, n1.ID, "RM")
	lg.Info("registered node node1:42")
	lg.Info("assigned container_1 to node node1:42")
	view := s.Snapshot()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 500; j++ {
				if n, ok := view.Query("container_1"); !ok || n != "node1:42" {
					t.Errorf("view.Query = %q, %v", n, ok)
					return
				}
			}
		}()
	}
	// Concurrent post-capture ingestion (COW clone happens under here).
	for j := 0; j < 200; j++ {
		lg.Info("assigned churn to node node1:42")
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
