// Race-focused tests: the paper's stash node is fed concurrently by
// Logstash agents on every cluster node, and a parallel campaign runs
// many stash-tapped simulations at once. Both shapes must stay clean
// under `go test -race`.
package stash

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dslog"
	"repro/internal/logparse"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/systems/cluster"
	"repro/internal/systems/toysys"
)

// TestConcurrentAgentsRace feeds one stash from four agent goroutines
// while a trigger goroutine queries it, then checks every association
// landed.
func TestConcurrentAgentsRace(t *testing.T) {
	const agents, rounds = 4, 100
	s, _, _ := buildStash(t)
	var wg sync.WaitGroup
	for n := 1; n <= agents; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s.Process(dslog.Record{Text: fmt.Sprintf("registered node node%d:42", n)})
				s.Process(dslog.Record{Text: fmt.Sprintf("assigned container_%d_%d to node node%d:42", n, i, n)})
			}
		}(n)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < agents*rounds; i++ {
			s.Query(fmt.Sprintf("container_1_%d", i%rounds))
			s.Nodes()
		}
	}()
	wg.Wait()

	for n := 1; n <= agents; n++ {
		for i := 0; i < rounds; i++ {
			val := fmt.Sprintf("container_%d_%d", n, i)
			node, ok := s.Query(val)
			if !ok || node != sim.NodeID(fmt.Sprintf("node%d:42", n)) {
				t.Fatalf("%s resolved to (%q, %v)", val, node, ok)
			}
		}
	}
	if want := 2 * agents * rounds; s.Instances != want {
		t.Errorf("Instances = %d, want %d", s.Instances, want)
	}
}

// TestConcurrentRunsWithStashesRace drives two complete simulated runs
// at once, each with its own stash tapping its own log root but sharing
// one (read-only) matcher — the shape of a parallel injection campaign.
func TestConcurrentRunsWithStashesRace(t *testing.T) {
	r := &toysys.Runner{}
	matcher := logparse.NewMatcher(logparse.ExtractPatterns(r.Program()))
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s := New(r.Hosts(), matcher, nil)
			logs := dslog.NewRoot()
			s.Attach(logs)
			run := r.NewRun(cluster.Config{Seed: seed, Scale: 1, Probe: probe.New(), Logs: logs})
			cluster.Drive(run, sim.Hour)
			if s.Instances == 0 {
				t.Errorf("seed %d: stash saw no records", seed)
			}
		}(int64(i + 1))
	}
	wg.Wait()
}
