// Package stash implements the paper's online log analysis (§3.2.1): a
// per-run log collector that extracts runtime meta-info values from log
// instances as they are produced and relates each value to the node it
// belongs to, so the Trigger can answer "which node owns this value?" at
// a crash point.
//
// The paper deploys Logstash agents on every node that forward only the
// runtime values of meta-info variables (selected by regex filters
// derived offline) to a custom stash node, which maintains a HashSet of
// node values and a HashMap from every other value to its node (Fig. 6).
// Here the agent is a tap on the run's log root; extraction reuses the
// offline matcher, selecting only the values of arguments whose types (or
// linked fields) were inferred as meta-info.
package stash

import (
	"sync"

	"repro/internal/dslog"
	"repro/internal/ir"
	"repro/internal/logparse"
	"repro/internal/metainfo"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Process-wide stash instruments on the default registry, pre-allocated
// atomics so the tap path stays allocation-free.
var (
	lookupTotal    = obs.Default.Counter("crashtuner_stash_lookups_total")
	lookupHits     = obs.Default.Counter("crashtuner_stash_lookup_hits_total")
	forwardedTotal = obs.Default.Counter("crashtuner_stash_forwarded_total")
)

// Stash is the custom-stash node state: the runtime meta-info graph plus
// counters for reporting.
//
// The paper's stash is a single node fed concurrently by Logstash agents
// on every cluster node, so the Stash is safe for concurrent use:
// Process and the queries serialize on an internal mutex. Within one
// simulated run the taps fire on a single goroutine, but parallel
// campaigns run many simulations at once and nothing stops a system
// model from fanning its agents out. Read the exported counters only
// after the run has quiesced.
type Stash struct {
	mu       sync.Mutex
	graph    *metainfo.Graph
	matcher  *logparse.Matcher
	analysis *metainfo.Analysis
	// session is the stash's matching scratch state; Process already
	// serializes on mu, so one session serves every agent. fwd is the
	// reused forward buffer of Process.
	session *logparse.MatchSession
	fwd     []string
	// Forwarded counts values the agents sent to the stash (after
	// filtering); Instances counts log records the agents saw.
	Forwarded int
	Instances int
}

// New builds a stash using the offline analysis results: the matcher's
// patterns act as the agents' extraction filters, and the meta-info
// analysis decides which argument values are worth forwarding.
func New(hosts []string, matcher *logparse.Matcher, analysis *metainfo.Analysis) *Stash {
	return &Stash{
		graph:    metainfo.NewGraph(hosts),
		matcher:  matcher,
		analysis: analysis,
		session:  matcher.NewSession(),
	}
}

// Attach subscribes the stash's agent to a run's log root; every record
// is processed synchronously in emission (FIFO) order.
func (s *Stash) Attach(root *dslog.Root) {
	root.AddTap(s.Process)
}

// Process handles one log record: match it to a pattern, keep the values
// of meta-info arguments (plus any node-referencing values), and feed
// them to the graph.
func (s *Stash) Process(rec dslog.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Instances++
	m := s.session.Match(rec)
	if m == nil {
		return
	}
	forward := s.fwd[:0]
	for i, arg := range m.Pattern.Stmt.Args {
		if i >= len(m.Values) {
			break
		}
		v := m.Values[i]
		if s.keep(arg, v) {
			forward = append(forward, v)
		}
	}
	s.fwd = forward[:0]
	if len(forward) == 0 {
		return
	}
	s.Forwarded += len(forward)
	forwardedTotal.Add(uint64(len(forward)))
	// Observe only reads the slice; the buffer is reused on the next call.
	s.graph.Observe(forward)
}

// keep decides whether an agent forwards a value: node-referencing values
// always pass the filter; otherwise the argument's type (or its linked
// field) must have been inferred as meta-info.
func (s *Stash) keep(arg ir.LogArg, v string) bool {
	if _, ok := s.graph.NodeValue(v); ok {
		return true
	}
	if s.analysis == nil {
		return false
	}
	if s.analysis.IsMetaType(arg.Type) {
		return true
	}
	if arg.Field != "" && s.analysis.IsMetaField(arg.Field) {
		return true
	}
	return false
}

// View is an immutable point-in-time capture of the stash's value→node
// state: the node HashSet and value→node HashMap of Fig. 6 exactly as
// they stood when Snapshot was called. It answers the same queries as
// the live stash but needs no lock — nothing can mutate it — so a
// snapshot plan can serve target resolution to many concurrent forked
// injection runs from one reference pass (see internal/trigger).
type View struct {
	graph *metainfo.Graph
}

// Snapshot captures the stash's current association state as a frozen
// copy-on-write view: O(1) now, with the live stash paying one map clone
// on its next mutation (metainfo.Graph.Snapshot).
func (s *Stash) Snapshot() *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &View{graph: s.graph.Snapshot()}
}

// Query returns the node owning a value at the capture instant, with the
// same semantics (and instruments) as Stash.Query.
func (v *View) Query(value string) (sim.NodeID, bool) {
	lookupTotal.Inc()
	n, ok := v.graph.NodeOf(value)
	if !ok {
		return "", false
	}
	lookupHits.Inc()
	return sim.NodeID(n), true
}

// QueryAny returns the node owning the first resolvable value.
func (v *View) QueryAny(values []string) (sim.NodeID, bool) {
	for _, val := range values {
		if n, ok := v.Query(val); ok {
			return n, true
		}
	}
	return "", false
}

// Query returns the node owning a runtime meta-info value, as in the
// Trigger's get_node_by_id (Fig. 7). ok is false for unknown values.
func (s *Stash) Query(value string) (sim.NodeID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lookupTotal.Inc()
	n, ok := s.graph.NodeOf(value)
	if !ok {
		return "", false
	}
	lookupHits.Inc()
	return sim.NodeID(n), true
}

// QueryAny returns the node owning the first resolvable value.
func (s *Stash) QueryAny(values []string) (sim.NodeID, bool) {
	for _, v := range values {
		if n, ok := s.Query(v); ok {
			return n, true
		}
	}
	return "", false
}

// Nodes returns the recorded node set.
func (s *Stash) Nodes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.graph.Nodes()
}

// Associations exposes the value→node map (Fig. 6) for reporting.
func (s *Stash) Associations() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.graph.Associations()
}
