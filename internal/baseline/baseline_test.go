package baseline

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/systems/toysys"
	"repro/internal/trigger"
)

func TestRandomCampaign(t *testing.T) {
	r := &toysys.Runner{}
	b := trigger.MeasureBaseline(r, 1, 1, 2, 0)
	res := Random(r, b, Options{Seed: 1, Runs: 60})
	if res.Runs != 60 {
		t.Fatalf("runs = %d", res.Runs)
	}
	if res.VirtualTime <= 0 {
		t.Error("no virtual time accumulated")
	}
	total := 0
	for _, n := range res.ByOutcome {
		total += n
	}
	if total != res.Runs {
		t.Errorf("outcome counts %d != runs %d", total, res.Runs)
	}
	// The toy system's post-write window (commitPending → doneCommit) is
	// large enough for random injection to hit it occasionally; the
	// pre-read window is a single event and is essentially never hit.
	if res.BugHits[toysys.BugPreRead] > res.BugHits[toysys.BugPostWrite] {
		t.Errorf("random injection hit the narrow pre-read window more than the wide post-write one: %v", res.BugHits)
	}
}

func TestRandomExcludesMasterByDefault(t *testing.T) {
	r := &toysys.Runner{}
	b := trigger.MeasureBaseline(r, 1, 1, 1, 0)
	res := Random(r, b, Options{Seed: 7, Runs: 40})
	// With the master (node0) excluded, no run can kill the coordinator,
	// so there can be no hang-by-dead-master runs beyond genuine bugs.
	if res.ByOutcome[trigger.Hang] > res.BugRuns {
		t.Errorf("outcomes inconsistent: %v", res.ByOutcome)
	}
}

func TestVictimSelection(t *testing.T) {
	nodes := []sim.NodeID{"node0:1", "node1:2", "node2:3"}
	v := victims(nodes, false)
	if len(v) != 2 {
		t.Fatalf("victims = %v", v)
	}
	for _, n := range v {
		if n.Host() == "node0" {
			t.Error("master not excluded")
		}
	}
	if len(victims(nodes, true)) != 3 {
		t.Error("IncludeMasters not honored")
	}
	// All-master clusters fall back to the full set.
	if len(victims([]sim.NodeID{"node0:1"}, false)) != 1 {
		t.Error("all-master fallback broken")
	}
}

func TestIOInjectionCampaign(t *testing.T) {
	r := &toysys.Runner{}
	res, matcher := core.AnalysisPhase(r, core.Options{Seed: 1})
	b := trigger.MeasureBaseline(r, 1, 1, 2, 0)
	_ = res
	// The toy system logs mostly on its master node, so include masters.
	out := IOInjection(r, matcher, b, Options{Seed: 1, IncludeMasters: true})
	// Two runs (before/after) per dynamic IO point.
	if out.Runs == 0 || out.Runs%2 != 0 {
		t.Errorf("IO runs = %d, want a positive even count", out.Runs)
	}
	// Excluding the master must strictly shrink the campaign; the
	// worker-side boot log keeps it non-empty.
	excl := IOInjection(r, matcher, b, Options{Seed: 1})
	if excl.Runs == 0 || excl.Runs >= out.Runs {
		t.Errorf("master exclusion not applied to IO points: excluded %d, included %d", excl.Runs, out.Runs)
	}
}

// Injection runs are lean by default (discard logs, lean probe); the
// FullObservation opt-out re-attaches the whole pipeline. The oracles
// read engine state only, so the two must agree byte for byte.
func TestLeanInjectionRunsMatchFullObservation(t *testing.T) {
	r := &toysys.Runner{}
	_, matcher := core.AnalysisPhase(r, core.Options{Seed: 1})
	b := trigger.MeasureBaseline(r, 1, 1, 2, 0)

	lean := Random(r, b, Options{Seed: 1, Runs: 30})
	full := Random(r, b, Options{Seed: 1, Runs: 30, FullObservation: true})
	if !reflect.DeepEqual(lean, full) {
		t.Errorf("random campaign diverged:\nlean %+v\nfull %+v", lean, full)
	}

	leanIO := IOInjection(r, matcher, b, Options{Seed: 1, IncludeMasters: true})
	fullIO := IOInjection(r, matcher, b, Options{Seed: 1, IncludeMasters: true, FullObservation: true})
	if !reflect.DeepEqual(leanIO, fullIO) {
		t.Errorf("io campaign diverged:\nlean %+v\nfull %+v", leanIO, fullIO)
	}
}

func TestCollectIOPoints(t *testing.T) {
	r := &toysys.Runner{}
	_, matcher := core.AnalysisPhase(r, core.Options{Seed: 1})
	pts := CollectIOPoints(r, matcher, 1, 1, 0)
	if len(pts) == 0 {
		t.Fatal("no dynamic IO points collected")
	}
	seen := map[string]bool{}
	for _, p := range pts {
		key := string(p.Pattern) + "@" + string(p.Node)
		if seen[key] {
			t.Errorf("duplicate IO point %s", key)
		}
		seen[key] = true
	}
}
