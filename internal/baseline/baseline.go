// Package baseline implements the two fault-injection baselines the
// paper compares CrashTuner against (§4.2): random crash injection and
// OpenStack-style IO fault injection.
//
// Random injection (§4.2.1) runs the system many times, each time
// injecting one crash (or shutdown) of a random node at a random time in
// [0, T], where T is the fault-free run time.
//
// IO fault injection (§4.2.2) injects around dynamic IO points. The
// paper instruments call-sites of read/write/flush/close methods on
// Closeable classes; in this reproduction the observable IO of a run is
// its log stream (every record is a file write), so a dynamic IO point
// is one (log pattern, node) pair observed during profiling, and the
// injection crashes the writing node right after (or just before) one of
// its emissions. The static side of Table 8 comes from the IR census.
package baseline

import (
	"sort"

	"repro/internal/dslog"
	"repro/internal/ir"
	"repro/internal/logparse"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/systems/cluster"
	"repro/internal/trigger"
)

// Result aggregates a baseline campaign.
type Result struct {
	System string
	Runs   int
	// ByOutcome counts runs per oracle outcome.
	ByOutcome map[trigger.Outcome]int
	// BugHits counts, per witnessed seeded bug, how many runs triggered
	// it (the "2(4)"-style cells of Tables 7 and 9).
	BugHits map[string]int
	// BugRuns is the number of runs with a bug outcome.
	BugRuns int
	// VirtualTime sums the virtual duration of all runs (the "Times(h)"
	// column, on the virtual clock).
	VirtualTime sim.Time
}

func newResult(system string) *Result {
	return &Result{
		System:    system,
		ByOutcome: make(map[trigger.Outcome]int),
		BugHits:   make(map[string]int),
	}
}

// DistinctBugs returns the witnessed bug IDs, sorted.
func (r *Result) DistinctBugs() []string {
	out := make([]string, 0, len(r.BugHits))
	for b := range r.BugHits {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

func (r *Result) record(run cluster.Run, outcome trigger.Outcome, dur sim.Time) {
	r.Runs++
	r.ByOutcome[outcome]++
	r.VirtualTime += dur
	if outcome.IsBug() {
		r.BugRuns++
		for _, w := range run.Witnesses() {
			r.BugHits[w]++
		}
	}
}

// Options configures a baseline campaign.
type Options struct {
	Seed          int64
	Scale         int
	Runs          int // number of injection runs
	TimeoutFactor int // oracle threshold (default 4)
	// DeadlineFactor bounds each run (default 20x baseline).
	DeadlineFactor int
	// IncludeMasters also targets the coordinator node (host "node0").
	// The paper's clusters restart crashed masters; the simulated
	// systems do not model master restart, so by default the baselines
	// pick victims among worker nodes only — otherwise every
	// master-victim run would trivially count as a hang.
	IncludeMasters bool
}

// masterHost is the coordinator host in every simulated system.
const masterHost = "node0"

func victims(nodes []sim.NodeID, includeMasters bool) []sim.NodeID {
	if includeMasters {
		return nodes
	}
	var out []sim.NodeID
	for _, n := range nodes {
		if n.Host() != masterHost {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nodes
	}
	return out
}

func (o *Options) defaults() {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.Runs <= 0 {
		o.Runs = 100
	}
	if o.TimeoutFactor <= 0 {
		o.TimeoutFactor = 4
	}
	if o.DeadlineFactor <= 0 {
		o.DeadlineFactor = 20
	}
}

func deadlineOf(b trigger.Baseline, factor int) sim.Time {
	d := b.Duration * sim.Time(factor)
	if d < 30*sim.Second {
		d = 30 * sim.Second
	}
	return d
}

// Random runs the §4.2.1 random crash-injection campaign.
func Random(r cluster.Runner, b trigger.Baseline, opts Options) *Result {
	opts.defaults()
	res := newResult(r.Name())
	deadline := deadlineOf(b, opts.DeadlineFactor)
	for i := 0; i < opts.Runs; i++ {
		run := r.NewRun(cluster.Config{
			Seed:  opts.Seed + int64(i),
			Scale: opts.Scale,
			Probe: probe.New(),
			Logs:  dslog.NewRoot(),
		})
		e := run.Engine()
		rng := e.Rand()
		at := sim.Time(rng.Int63n(int64(b.Duration) + 1))
		nodes := victims(e.AliveNodes(), opts.IncludeMasters)
		victim := nodes[rng.Intn(len(nodes))]
		graceful := rng.Intn(2) == 0
		e.After(at, func() {
			if graceful {
				e.Shutdown(victim)
			} else {
				e.Crash(victim)
			}
		})
		rr := cluster.Drive(run, deadline)
		newEx := trigger.NewUnhandled(b, e)
		outcome := trigger.Evaluate(b, run, rr, newEx, opts.TimeoutFactor)
		res.record(run, outcome, rr.End)
	}
	return res
}

// IOPoint is one dynamic IO point: a log pattern emitted by a node.
type IOPoint struct {
	Pattern ir.PointID
	Node    sim.NodeID
	// At is a representative emission time from the profiling run.
	At sim.Time
}

// CollectIOPoints profiles one run and returns the dynamic IO points:
// distinct (pattern, node) pairs with their first emission times.
func CollectIOPoints(r cluster.Runner, matcher *logparse.Matcher, seed int64, scale int, deadline sim.Time) []IOPoint {
	logs := dslog.NewRoot()
	run := r.NewRun(cluster.Config{Seed: seed, Scale: scale, Probe: probe.New(), Logs: logs})
	cluster.Drive(run, deadline)
	seen := map[string]bool{}
	var out []IOPoint
	for _, rec := range logs.Records() {
		m := matcher.Match(rec)
		if m == nil {
			continue
		}
		key := string(m.Pattern.Point) + "@" + string(rec.Node)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, IOPoint{Pattern: m.Pattern.Point, Node: rec.Node, At: rec.At})
	}
	return out
}

// IOInjection runs the §4.2.2 campaign: for every dynamic IO point, two
// runs — one crashing the writing node just before the emission time and
// one just after.
func IOInjection(r cluster.Runner, matcher *logparse.Matcher, b trigger.Baseline, opts Options) *Result {
	opts.defaults()
	res := newResult(r.Name())
	deadline := deadlineOf(b, opts.DeadlineFactor)
	points := CollectIOPoints(r, matcher, opts.Seed, opts.Scale, deadline)
	if !opts.IncludeMasters {
		kept := points[:0]
		for _, pt := range points {
			if pt.Node.Host() != masterHost {
				kept = append(kept, pt)
			}
		}
		points = kept
	}
	for i, pt := range points {
		for _, delta := range []sim.Time{-sim.Millisecond, sim.Millisecond} {
			at := pt.At + delta
			if at < 0 {
				at = 0
			}
			run := r.NewRun(cluster.Config{
				Seed:  opts.Seed + int64(i),
				Scale: opts.Scale,
				Probe: probe.New(),
				Logs:  dslog.NewRoot(),
			})
			e := run.Engine()
			victim := pt.Node
			e.After(at, func() { e.Crash(victim) })
			rr := cluster.Drive(run, deadline)
			newEx := trigger.NewUnhandled(b, e)
			outcome := trigger.Evaluate(b, run, rr, newEx, opts.TimeoutFactor)
			res.record(run, outcome, rr.End)
		}
	}
	return res
}
