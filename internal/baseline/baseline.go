// Package baseline implements the two fault-injection baselines the
// paper compares CrashTuner against (§4.2): random crash injection and
// OpenStack-style IO fault injection.
//
// Random injection (§4.2.1) runs the system many times, each time
// injecting one crash (or shutdown) of a random node at a random time in
// [0, T], where T is the fault-free run time.
//
// IO fault injection (§4.2.2) injects around dynamic IO points. The
// paper instruments call-sites of read/write/flush/close methods on
// Closeable classes; in this reproduction the observable IO of a run is
// its log stream (every record is a file write), so a dynamic IO point
// is one (log pattern, node) pair observed during profiling, and the
// injection crashes the writing node right after (or just before) one of
// its emissions. The static side of Table 8 comes from the IR census.
//
// Baseline campaigns are deliberately excluded from the clone-fork
// machinery (trigger.SnapshotPlan): each baseline run draws its own
// per-run seed and injects at t chosen before the run starts, so no two
// runs share a fault-free prefix to fork from — there is nothing for a
// clone ladder to amortize. The closure timers scheduled here
// (sim.Engine.After) are therefore fine; they never coexist with an
// Engine.Clone.
package baseline

import (
	"sort"

	"repro/internal/campaign"
	"repro/internal/dslog"
	"repro/internal/ir"
	"repro/internal/logparse"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/systems/cluster"
	"repro/internal/trigger"
)

// Result aggregates a baseline campaign.
type Result struct {
	System string
	Runs   int
	// ByOutcome counts runs per oracle outcome.
	ByOutcome map[trigger.Outcome]int
	// BugHits counts, per witnessed seeded bug, how many runs triggered
	// it (the "2(4)"-style cells of Tables 7 and 9).
	BugHits map[string]int
	// BugRuns is the number of runs with a bug outcome.
	BugRuns int
	// VirtualTime sums the virtual duration of all runs (the "Times(h)"
	// column, on the virtual clock).
	VirtualTime sim.Time
}

func newResult(system string) *Result {
	return &Result{
		System:    system,
		ByOutcome: make(map[trigger.Outcome]int),
		BugHits:   make(map[string]int),
	}
}

// DistinctBugs returns the witnessed bug IDs, sorted.
func (r *Result) DistinctBugs() []string {
	out := make([]string, 0, len(r.BugHits))
	for b := range r.BugHits {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// runOutcome is the result of one injection run, carried from the worker
// that executed it to the (sequential, index-ordered) aggregation fold.
// Its fields are exported so checkpointed campaigns round-trip it
// through the JSONL checkpoint file.
type runOutcome struct {
	Outcome   trigger.Outcome `json:"outcome"`
	Duration  sim.Time        `json:"duration"`
	Witnesses []string        `json:"witnesses,omitempty"`
	// Fault/Target/NewExceptions feed the triage recorder; omitempty
	// keeps checkpoints from earlier versions loadable (the fields are
	// simply absent there and the affected runs re-record as unknowns).
	Fault         string   `json:"fault,omitempty"`
	Target        string   `json:"target,omitempty"`
	NewExceptions []string `json:"newExceptions,omitempty"`
}

func (r *Result) record(o runOutcome) {
	r.Runs++
	r.ByOutcome[o.Outcome]++
	r.VirtualTime += o.Duration
	if o.Outcome.IsBug() {
		r.BugRuns++
		for _, w := range o.Witnesses {
			r.BugHits[w]++
		}
	}
}

// Options configures a baseline campaign.
type Options struct {
	// Config carries the shared campaign-execution knobs (worker pool,
	// checkpointing, observability sink); see campaign.Config.
	campaign.Config

	Seed          int64
	Scale         int
	Runs          int // number of injection runs
	TimeoutFactor int // oracle threshold (default 4)
	// DeadlineFactor bounds each run (default 20x baseline).
	DeadlineFactor int
	// IncludeMasters also targets the coordinator node (host "node0").
	// The paper's clusters restart crashed masters; by default the
	// baselines do not, and pick victims among worker nodes only —
	// otherwise every master-victim run would trivially count as a hang.
	// Set MasterRestart (and IncludeMasters) to model the paper's setup:
	// a crashed master is restarted and rejoins via the system's
	// recovery path.
	IncludeMasters bool
	// MasterRestart, when positive, restarts a crashed master that long
	// after the injection, mirroring the paper's clusters where the
	// master is supervised. Only meaningful with IncludeMasters.
	MasterRestart sim.Time
	// FullObservation keeps the full observation pipeline (rendered log
	// records, stack-recording probe) attached to every injection run.
	// By default injection runs are lean — logs go to a discard root and
	// the probe skips stack bookkeeping — because the baseline oracles
	// read engine state only (workload status, exceptions, witnesses),
	// never the rendered log stream: the same observation elision a
	// snapshot fork performs (see trigger/snapshot.go), with the same
	// byte-identical results. The profiling run behind CollectIOPoints
	// always observes fully; it exists to read the logs.
	FullObservation bool
}

// runConfig builds the per-injection-run cluster config: lean by
// default, full when Options.FullObservation asks for it.
func (o Options) runConfig(seed int64) cluster.Config {
	pb := probe.New()
	pb.Lean = !o.FullObservation
	logs := dslog.Discard()
	if o.FullObservation {
		logs = dslog.NewRoot()
	}
	return cluster.Config{Seed: seed, Scale: o.Scale, Probe: pb, Logs: logs}
}

// campaignOptions builds the engine options for one baseline campaign,
// labelled with its kind ("random" or "io") and annotated with the
// per-run oracle outcome and virtual duration.
func (o Options) campaignOptions(system, kind string) campaign.Options[runOutcome] {
	bugs := 0 // guarded by the campaign completion lock (Annotate contract)
	return campaign.Options[runOutcome]{
		Workers:    o.Workers,
		Checkpoint: o.Config.Checkpoint(),
		Sink:       o.Sink,
		Scope:      obs.Scope{System: system, Campaign: kind},
		Annotate: func(ev *obs.Event, i int, r runOutcome) {
			if r.Outcome.IsBug() {
				bugs++
			}
			ev.Bugs = bugs
			ev.Outcome = r.Outcome.String()
			ev.Sim = r.Duration
		},
	}
}

// recordRuns delivers a baseline campaign's outcomes to the configured
// triage recorder, in run order so repeat campaigns append to a store
// identically. Only the caller knows the job layout, so it supplies the
// per-run static point and seed.
func (o Options) recordRuns(system, kind string, outcomes []runOutcome, job func(i int) (point string, seed int64)) {
	rec := o.Config.Recorder
	if rec == nil {
		return
	}
	for i, out := range outcomes {
		point, seed := job(i)
		rec.Record(campaign.RunRecord{
			System:     system,
			Campaign:   kind,
			Run:        i,
			Seed:       seed,
			Scale:      o.Scale,
			Point:      point,
			Fault:      out.Fault,
			Target:     out.Target,
			Outcome:    out.Outcome.String(),
			Failing:    out.Outcome.IsBug(),
			Exceptions: out.NewExceptions,
			Witnesses:  out.Witnesses,
			Duration:   out.Duration,
		})
	}
}

// masterHost is the coordinator host in every simulated system.
const masterHost = "node0"

func victims(nodes []sim.NodeID, includeMasters bool) []sim.NodeID {
	if includeMasters {
		return nodes
	}
	var out []sim.NodeID
	for _, n := range nodes {
		if n.Host() != masterHost {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nodes
	}
	return out
}

func (o *Options) defaults() {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.Runs <= 0 {
		o.Runs = 100
	}
	if o.TimeoutFactor <= 0 {
		o.TimeoutFactor = 4
	}
	if o.DeadlineFactor <= 0 {
		o.DeadlineFactor = 20
	}
}

func deadlineOf(b trigger.Baseline, factor int) sim.Time {
	d := b.Duration * sim.Time(factor)
	if d < 30*sim.Second {
		d = 30 * sim.Second
	}
	return d
}

// Random runs the §4.2.1 random crash-injection campaign. Runs fan out
// across the Options' worker pool; each run is an independent simulation
// seeded by its index, and the per-run outcomes are folded into the
// Result in index order, so the Result is identical for any worker
// count.
func Random(r cluster.Runner, b trigger.Baseline, opts Options) *Result {
	opts.defaults()
	res := newResult(r.Name())
	deadline := deadlineOf(b, opts.DeadlineFactor)
	outcomes := campaign.Run(opts.Runs, opts.campaignOptions(r.Name(), "random"), func(i int) runOutcome {
		run := r.NewRun(opts.runConfig(opts.Seed + int64(i)))
		e := run.Engine()
		rng := e.Rand()
		at := sim.Time(rng.Int63n(int64(b.Duration) + 1))
		nodes := victims(e.AliveNodes(), opts.IncludeMasters)
		victim := nodes[rng.Intn(len(nodes))]
		graceful := rng.Intn(2) == 0
		e.After(at, func() {
			if graceful {
				e.Shutdown(victim)
			} else {
				e.Crash(victim)
			}
			if opts.MasterRestart > 0 && victim.Host() == masterHost {
				e.After(opts.MasterRestart, func() { cluster.Restart(run, victim) })
			}
		})
		rr := cluster.Drive(run, deadline)
		newEx := trigger.NewUnhandled(b, e)
		outcome := trigger.Evaluate(b, run, rr, newEx, opts.TimeoutFactor)
		fault := "crash"
		if graceful {
			fault = "shutdown"
		}
		return runOutcome{Outcome: outcome, Duration: rr.End, Witnesses: run.Witnesses(),
			Fault: fault, Target: string(victim), NewExceptions: newEx}
	})
	for _, o := range outcomes {
		res.record(o)
	}
	opts.recordRuns(r.Name(), "random", outcomes, func(i int) (string, int64) {
		return "", opts.Seed + int64(i)
	})
	return res
}

// IOPoint is one dynamic IO point: a log pattern emitted by a node.
type IOPoint struct {
	Pattern ir.PointID
	Node    sim.NodeID
	// At is a representative emission time from the profiling run.
	At sim.Time
}

// CollectIOPoints profiles one run and returns the dynamic IO points:
// distinct (pattern, node) pairs with their first emission times.
func CollectIOPoints(r cluster.Runner, matcher *logparse.Matcher, seed int64, scale int, deadline sim.Time) []IOPoint {
	logs := dslog.NewRoot()
	run := r.NewRun(cluster.Config{Seed: seed, Scale: scale, Probe: probe.New(), Logs: logs})
	cluster.Drive(run, deadline)
	seen := map[string]bool{}
	var out []IOPoint
	session := matcher.NewSession()
	for _, rec := range logs.Records() {
		m := session.Match(rec)
		if m == nil {
			continue
		}
		key := string(m.Pattern.Point) + "@" + string(rec.Node)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, IOPoint{Pattern: m.Pattern.Point, Node: rec.Node, At: rec.At})
	}
	return out
}

// IOInjection runs the §4.2.2 campaign: for every dynamic IO point, two
// runs — one crashing the writing node just before the emission time and
// one just after.
func IOInjection(r cluster.Runner, matcher *logparse.Matcher, b trigger.Baseline, opts Options) *Result {
	opts.defaults()
	res := newResult(r.Name())
	deadline := deadlineOf(b, opts.DeadlineFactor)
	points := CollectIOPoints(r, matcher, opts.Seed, opts.Scale, deadline)
	if !opts.IncludeMasters {
		kept := points[:0]
		for _, pt := range points {
			if pt.Node.Host() != masterHost {
				kept = append(kept, pt)
			}
		}
		points = kept
	}
	// Flatten (point, delta) into an indexed job list so the pool can
	// fan the whole campaign out while the aggregation below stays in
	// the sequential (point-major, before-then-after) order.
	deltas := []sim.Time{-sim.Millisecond, sim.Millisecond}
	type ioJob struct {
		point IOPoint
		seed  int64
		at    sim.Time
	}
	jobs := make([]ioJob, 0, 2*len(points))
	for i, pt := range points {
		for _, delta := range deltas {
			at := pt.At + delta
			if at < 0 {
				at = 0
			}
			jobs = append(jobs, ioJob{point: pt, seed: opts.Seed + int64(i), at: at})
		}
	}
	outcomes := campaign.Run(len(jobs), opts.campaignOptions(r.Name(), "io"), func(i int) runOutcome {
		j := jobs[i]
		run := r.NewRun(opts.runConfig(j.seed))
		e := run.Engine()
		victim := j.point.Node
		e.After(j.at, func() {
			e.Crash(victim)
			if opts.MasterRestart > 0 && victim.Host() == masterHost {
				e.After(opts.MasterRestart, func() { cluster.Restart(run, victim) })
			}
		})
		rr := cluster.Drive(run, deadline)
		newEx := trigger.NewUnhandled(b, e)
		outcome := trigger.Evaluate(b, run, rr, newEx, opts.TimeoutFactor)
		return runOutcome{Outcome: outcome, Duration: rr.End, Witnesses: run.Witnesses(),
			Fault: "crash", Target: string(victim), NewExceptions: newEx}
	})
	for _, o := range outcomes {
		res.record(o)
	}
	opts.recordRuns(r.Name(), "io", outcomes, func(i int) (string, int64) {
		return string(jobs[i].point.Pattern), jobs[i].seed
	})
	return res
}
