// Package baseline implements the two fault-injection baselines the
// paper compares CrashTuner against (§4.2): random crash injection and
// OpenStack-style IO fault injection.
//
// Random injection (§4.2.1) runs the system many times, each time
// injecting one crash (or shutdown) of a random node at a random time in
// [0, T], where T is the fault-free run time.
//
// IO fault injection (§4.2.2) injects around dynamic IO points. The
// paper instruments call-sites of read/write/flush/close methods on
// Closeable classes; in this reproduction the observable IO of a run is
// its log stream (every record is a file write), so a dynamic IO point
// is one (log pattern, node) pair observed during profiling, and the
// injection crashes the writing node right after (or just before) one of
// its emissions. The static side of Table 8 comes from the IR census.
//
// Baseline campaigns are deliberately excluded from the clone-fork
// machinery (trigger.SnapshotPlan): each baseline run draws its own
// per-run seed and injects at t chosen before the run starts, so no two
// runs share a fault-free prefix to fork from — there is nothing for a
// clone ladder to amortize. The closure timers scheduled here
// (sim.Engine.After) are therefore fine; they never coexist with an
// Engine.Clone.
package baseline

import (
	"sort"

	"repro/internal/campaign"
	"repro/internal/dslog"
	"repro/internal/fleet"
	"repro/internal/ir"
	"repro/internal/logparse"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/systems/cluster"
	"repro/internal/trigger"
)

// Result aggregates a baseline campaign.
type Result struct {
	System string
	Runs   int
	// ByOutcome counts runs per oracle outcome.
	ByOutcome map[trigger.Outcome]int
	// BugHits counts, per witnessed seeded bug, how many runs triggered
	// it (the "2(4)"-style cells of Tables 7 and 9).
	BugHits map[string]int
	// BugRuns is the number of runs with a bug outcome.
	BugRuns int
	// VirtualTime sums the virtual duration of all runs (the "Times(h)"
	// column, on the virtual clock).
	VirtualTime sim.Time
}

func newResult(system string) *Result {
	return &Result{
		System:    system,
		ByOutcome: make(map[trigger.Outcome]int),
		BugHits:   make(map[string]int),
	}
}

// DistinctBugs returns the witnessed bug IDs, sorted.
func (r *Result) DistinctBugs() []string {
	out := make([]string, 0, len(r.BugHits))
	for b := range r.BugHits {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

func (r *Result) record(o fleet.Result) {
	r.Runs++
	outcome, _ := trigger.ParseOutcome(o.Outcome)
	r.ByOutcome[outcome]++
	r.VirtualTime += o.Duration
	if o.Failing {
		r.BugRuns++
		for _, w := range o.Witnesses {
			r.BugHits[w]++
		}
	}
}

// Options configures a baseline campaign.
type Options struct {
	// Config carries the shared campaign-execution knobs (worker pool,
	// checkpointing, observability sink); see campaign.Config.
	campaign.Config

	Seed          int64
	Scale         int
	Runs          int // number of injection runs
	TimeoutFactor int // oracle threshold (default 4)
	// DeadlineFactor bounds each run (default 20x baseline).
	DeadlineFactor int
	// IncludeMasters also targets the coordinator node (host "node0").
	// The paper's clusters restart crashed masters; by default the
	// baselines do not, and pick victims among worker nodes only —
	// otherwise every master-victim run would trivially count as a hang.
	// Set MasterRestart (and IncludeMasters) to model the paper's setup:
	// a crashed master is restarted and rejoins via the system's
	// recovery path.
	IncludeMasters bool
	// MasterRestart, when positive, restarts a crashed master that long
	// after the injection, mirroring the paper's clusters where the
	// master is supervised. Only meaningful with IncludeMasters.
	MasterRestart sim.Time
	// FullObservation keeps the full observation pipeline (rendered log
	// records, stack-recording probe) attached to every injection run.
	// By default injection runs are lean — logs go to a discard root and
	// the probe skips stack bookkeeping — because the baseline oracles
	// read engine state only (workload status, exceptions, witnesses),
	// never the rendered log stream: the same observation elision a
	// snapshot fork performs (see trigger/snapshot.go), with the same
	// byte-identical results. The profiling run behind CollectIOPoints
	// always observes fully; it exists to read the logs.
	FullObservation bool
}

// runConfig builds the per-injection-run cluster config: lean by
// default, full when Options.FullObservation asks for it.
func (o Options) runConfig(seed int64) cluster.Config {
	pb := probe.New()
	pb.Lean = !o.FullObservation
	logs := dslog.Discard()
	if o.FullObservation {
		logs = dslog.NewRoot()
	}
	return cluster.Config{Seed: seed, Scale: o.Scale, Probe: pb, Logs: logs}
}

// campaignOptions builds the engine options for one baseline campaign,
// labelled with its kind ("random" or "io") and annotated with the
// per-run oracle outcome and virtual duration. The job type is the
// fleet wire result, so baseline checkpoints use the same encoding as
// every other campaign's.
func (o Options) campaignOptions(system, kind string) campaign.Options[fleet.Result] {
	bugs := 0 // guarded by the campaign completion lock (Annotate contract)
	return campaign.Options[fleet.Result]{
		Workers:    o.Workers,
		Checkpoint: o.Config.Checkpoint(),
		Sink:       o.Sink,
		Scope:      obs.Scope{System: system, Campaign: kind},
		Annotate: func(ev *obs.Event, i int, r fleet.Result) {
			if r.Failing {
				bugs++
			}
			ev.Bugs = bugs
			ev.Outcome = r.Outcome
			ev.Sim = r.Duration
		},
	}
}

// recordResults delivers a baseline campaign's results to the
// configured triage recorder, in run order so repeat campaigns append
// to a store identically. Each wire result flattens itself; the job it
// echoes carries the per-run point and seed.
func (o Options) recordResults(results []fleet.Result) {
	rec := o.Config.Recorder
	if rec == nil {
		return
	}
	for _, res := range results {
		rec.Record(res.RunRecord())
	}
}

// masterHost is the coordinator host in every simulated system.
const masterHost = "node0"

func victims(nodes []sim.NodeID, includeMasters bool) []sim.NodeID {
	if includeMasters {
		return nodes
	}
	var out []sim.NodeID
	for _, n := range nodes {
		if n.Host() != masterHost {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nodes
	}
	return out
}

func (o *Options) defaults() {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.Runs <= 0 {
		o.Runs = 100
	}
	if o.TimeoutFactor <= 0 {
		o.TimeoutFactor = 4
	}
	if o.DeadlineFactor <= 0 {
		o.DeadlineFactor = 20
	}
}

func deadlineOf(b trigger.Baseline, factor int) sim.Time {
	d := b.Duration * sim.Time(factor)
	if d < 30*sim.Second {
		d = 30 * sim.Second
	}
	return d
}

// resultOf assembles the wire result of one baseline run.
func resultOf(j fleet.Job, outcome trigger.Outcome, duration sim.Time, witnesses, newEx []string, fault *fleet.Fault, target string) fleet.Result {
	return fleet.Result{
		Job:        j,
		Outcome:    outcome.String(),
		Failing:    outcome.IsBug(),
		Target:     target,
		Fault:      fault,
		Duration:   duration,
		Exceptions: newEx,
		Witnesses:  witnesses,
	}
}

// randomExecutor implements fleet.Executor for the random campaign. A
// random job is fully named by its seed: the injection time, the victim
// and the crash/shutdown coin are all drawn from the run's own engine
// RNG, so re-executing the job anywhere reproduces it bit-identically.
type randomExecutor struct {
	runner   cluster.Runner
	baseline trigger.Baseline
	opts     Options
	deadline sim.Time
}

var _ fleet.Executor = (*randomExecutor)(nil)

func (x *randomExecutor) Execute(j fleet.Job) fleet.Result {
	run := x.runner.NewRun(x.opts.runConfig(j.Seed))
	e := run.Engine()
	rng := e.Rand()
	at := sim.Time(rng.Int63n(int64(x.baseline.Duration) + 1))
	nodes := victims(e.AliveNodes(), x.opts.IncludeMasters)
	victim := nodes[rng.Intn(len(nodes))]
	graceful := rng.Intn(2) == 0
	e.After(at, func() {
		if graceful {
			e.Shutdown(victim)
		} else {
			e.Crash(victim)
		}
		if x.opts.MasterRestart > 0 && victim.Host() == masterHost {
			e.After(x.opts.MasterRestart, func() { cluster.Restart(run, victim) })
		}
	})
	rr := cluster.Drive(run, x.deadline)
	newEx := trigger.NewUnhandled(x.baseline, e)
	outcome := trigger.Evaluate(x.baseline, run, rr, newEx, x.opts.TimeoutFactor)
	kind := sim.FaultCrash
	if graceful {
		kind = sim.FaultShutdown
	}
	fault := &fleet.Fault{Kind: kind.String(), Node: string(victim), At: at}
	return resultOf(j, outcome, rr.End, run.Witnesses(), newEx, fault, string(victim))
}

// Random runs the §4.2.1 random crash-injection campaign: the job list
// (one wire job per run, seeded by index) drives a fleet executor over
// the Options' worker pool, and the per-run results fold into the
// Result in index order, so the Result is identical for any worker
// count.
func Random(r cluster.Runner, b trigger.Baseline, opts Options) *Result {
	opts.defaults()
	res := newResult(r.Name())
	x := &randomExecutor{runner: r, baseline: b, opts: opts, deadline: deadlineOf(b, opts.DeadlineFactor)}
	jobs := make([]fleet.Job, opts.Runs)
	for i := range jobs {
		jobs[i] = fleet.Job{System: r.Name(), Campaign: "random", Run: i, Seed: opts.Seed + int64(i), Scale: opts.Scale}
	}
	results := campaign.Run(len(jobs), opts.campaignOptions(r.Name(), "random"), func(i int) fleet.Result { return x.Execute(jobs[i]) })
	for _, o := range results {
		res.record(o)
	}
	opts.recordResults(results)
	return res
}

// IOPoint is one dynamic IO point: a log pattern emitted by a node.
type IOPoint struct {
	Pattern ir.PointID
	Node    sim.NodeID
	// At is a representative emission time from the profiling run.
	At sim.Time
}

// CollectIOPoints profiles one run and returns the dynamic IO points:
// distinct (pattern, node) pairs with their first emission times.
func CollectIOPoints(r cluster.Runner, matcher *logparse.Matcher, seed int64, scale int, deadline sim.Time) []IOPoint {
	logs := dslog.NewRoot()
	run := r.NewRun(cluster.Config{Seed: seed, Scale: scale, Probe: probe.New(), Logs: logs})
	cluster.Drive(run, deadline)
	seen := map[string]bool{}
	var out []IOPoint
	session := matcher.NewSession()
	for _, rec := range logs.Records() {
		m := session.Match(rec)
		if m == nil {
			continue
		}
		key := string(m.Pattern.Point) + "@" + string(rec.Node)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, IOPoint{Pattern: m.Pattern.Point, Node: rec.Node, At: rec.At})
	}
	return out
}

// ioJob is one flattened (IO point, delta) injection.
type ioJob struct {
	point IOPoint
	seed  int64
	at    sim.Time
}

// ioExecutor implements fleet.Executor for the IO-injection campaign.
// The flattened job list is rebuilt deterministically from the campaign
// seed and scale (CollectIOPoints profiles one run), so a wire job
// needs only its run ordinal to name its injection.
type ioExecutor struct {
	runner   cluster.Runner
	baseline trigger.Baseline
	opts     Options
	deadline sim.Time
	jobs     []ioJob
}

var _ fleet.Executor = (*ioExecutor)(nil)

// newIOExecutor collects the dynamic IO points and flattens (point,
// delta) pairs into the indexed job list, point-major with the
// before-emission run ahead of the after-emission one.
func newIOExecutor(r cluster.Runner, matcher *logparse.Matcher, b trigger.Baseline, opts Options) *ioExecutor {
	x := &ioExecutor{runner: r, baseline: b, opts: opts, deadline: deadlineOf(b, opts.DeadlineFactor)}
	points := CollectIOPoints(r, matcher, opts.Seed, opts.Scale, x.deadline)
	if !opts.IncludeMasters {
		kept := points[:0]
		for _, pt := range points {
			if pt.Node.Host() != masterHost {
				kept = append(kept, pt)
			}
		}
		points = kept
	}
	deltas := []sim.Time{-sim.Millisecond, sim.Millisecond}
	x.jobs = make([]ioJob, 0, 2*len(points))
	for i, pt := range points {
		for _, delta := range deltas {
			at := pt.At + delta
			if at < 0 {
				at = 0
			}
			x.jobs = append(x.jobs, ioJob{point: pt, seed: opts.Seed + int64(i), at: at})
		}
	}
	return x
}

func (x *ioExecutor) Execute(j fleet.Job) fleet.Result {
	if j.Run < 0 || j.Run >= len(x.jobs) {
		res := resultOf(j, trigger.HarnessError, 0, nil, nil, nil, "")
		res.Reason = "io job ordinal out of range"
		return res
	}
	jb := x.jobs[j.Run]
	run := x.runner.NewRun(x.opts.runConfig(jb.seed))
	e := run.Engine()
	victim := jb.point.Node
	e.After(jb.at, func() {
		e.Crash(victim)
		if x.opts.MasterRestart > 0 && victim.Host() == masterHost {
			e.After(x.opts.MasterRestart, func() { cluster.Restart(run, victim) })
		}
	})
	rr := cluster.Drive(run, x.deadline)
	newEx := trigger.NewUnhandled(x.baseline, e)
	outcome := trigger.Evaluate(x.baseline, run, rr, newEx, x.opts.TimeoutFactor)
	fault := &fleet.Fault{Kind: sim.FaultCrash.String(), Node: string(victim), At: jb.at}
	return resultOf(j, outcome, rr.End, run.Witnesses(), newEx, fault, string(victim))
}

// IOInjection runs the §4.2.2 campaign: for every dynamic IO point, two
// runs — one crashing the writing node just before the emission time and
// one just after — driven through the campaign's fleet executor.
func IOInjection(r cluster.Runner, matcher *logparse.Matcher, b trigger.Baseline, opts Options) *Result {
	opts.defaults()
	res := newResult(r.Name())
	x := newIOExecutor(r, matcher, b, opts)
	jobs := make([]fleet.Job, len(x.jobs))
	for i, jb := range x.jobs {
		jobs[i] = fleet.Job{System: r.Name(), Campaign: "io", Run: i, Seed: jb.seed, Scale: opts.Scale, Point: string(jb.point.Pattern)}
	}
	results := campaign.Run(len(jobs), opts.campaignOptions(r.Name(), "io"), func(i int) fleet.Result { return x.Execute(jobs[i]) })
	for _, o := range results {
		res.record(o)
	}
	opts.recordResults(results)
	return res
}
