package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRecoverIsolatesPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got := Run(8, Options[int]{
			Workers: workers,
			Recover: func(i int, v any) int { return -i },
		}, func(i int) int {
			if i%2 == 1 {
				panic(fmt.Sprintf("job %d exploded", i))
			}
			return i
		})
		for i, v := range got {
			want := i
			if i%2 == 1 {
				want = -i
			}
			if v != want {
				t.Errorf("workers=%d: job %d = %d, want %d", workers, i, v, want)
			}
		}
	}
}

func TestNilRecoverPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate with Recover nil")
		}
	}()
	Run(1, Options[int]{Workers: 1}, func(i int) int { panic("boom") })
}

func TestStallWatchdogAbandonsLivelockedJob(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	// The timeout is deliberately generous: the healthy jobs finish in
	// microseconds, so only the genuinely livelocked job can ever reach
	// it, and a loaded CI machine cannot flake the fast jobs past it.
	// The watchdog's own liveness is pinned by the outer deadline below.
	done := make(chan []int, 1)
	go func() {
		done <- Run(3, Options[int]{
			Workers:      2,
			StallTimeout: 1 * time.Second,
			OnStall:      func(i int) int { return -100 - i },
		}, func(i int) int {
			if i == 1 {
				<-block // livelocked forever
			}
			return i
		})
	}()
	select {
	case got := <-done:
		if !reflect.DeepEqual(got, []int{0, -101, 2}) {
			t.Errorf("got %v, want [0 -101 2]", got)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stall watchdog never abandoned the livelocked job")
	}
}

// TestBlockingSinkCannotDeadlockPanickingJob pins the documented
// contract: panic recovery happens on the job's own goroutine before the
// completion lock, so even a Sink that blocks forever only stalls the
// pool — a panicking job still resolves to its Recover result and the
// campaign finishes once the sink unblocks.
func TestBlockingSinkCannotDeadlockPanickingJob(t *testing.T) {
	release := make(chan struct{})
	first := true
	done := make(chan []int, 1)
	go func() {
		done <- Run(4, Options[int]{
			Workers: 2,
			Recover: func(i int, v any) int { return -i },
			Sink: obs.SinkFunc(func(ev obs.Event) {
				if ev.Kind == obs.RunDone && first {
					first = false // emission is serialized; no race
					<-release     // block the completion path for a while
				}
			}),
		}, func(i int) int {
			if i%2 == 0 {
				panic("even jobs explode")
			}
			return i
		})
	}()
	// Give the pool time to wedge if the recovery path were under the
	// same lock as the sink emission.
	time.Sleep(50 * time.Millisecond)
	close(release)
	select {
	case got := <-done:
		want := []int{0, 1, -2, 3}
		want[0] = 0 // job 0 panics → Recover(0) == 0
		if !reflect.DeepEqual(got, want) {
			t.Errorf("got %v, want %v", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("campaign deadlocked: blocking sink wedged a panicking job")
	}
}

func TestCheckpointWriteAndResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	calls := 0
	first := Run(6, Options[int]{
		Workers:    1,
		Checkpoint: &CheckpointConfig{Path: path},
	}, func(i int) int { calls++; return i * 10 })
	if calls != 6 {
		t.Fatalf("first pass ran %d jobs, want 6", calls)
	}

	// Truncate the checkpoint to its first 3 lines plus a torn tail, as
	// if the process had been killed mid-write.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	if len(lines) < 6 {
		t.Fatalf("checkpoint has %d lines, want 6", len(lines))
	}
	torn := strings.Join(lines[:3], "") + `{"i":3,"r":`
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	calls = 0
	second := Run(6, Options[int]{
		Workers:    1,
		Checkpoint: &CheckpointConfig{Path: path, Resume: true},
	}, func(i int) int { calls++; return i * 10 })
	if calls != 3 {
		t.Errorf("resume re-ran %d jobs, want 3 (the torn line and beyond)", calls)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("resumed results differ: %v vs %v", first, second)
	}

	// A third run resumes a now-complete checkpoint: zero executions.
	calls = 0
	third := Run(6, Options[int]{
		Workers:    1,
		Checkpoint: &CheckpointConfig{Path: path, Resume: true},
	}, func(i int) int { calls++; return i * 10 })
	if calls != 0 {
		t.Errorf("complete checkpoint still ran %d jobs", calls)
	}
	if !reflect.DeepEqual(first, third) {
		t.Errorf("third pass differs: %v vs %v", first, third)
	}
}

func TestCheckpointWithoutResumeTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	Run(3, Options[int]{Workers: 1, Checkpoint: &CheckpointConfig{Path: path}},
		func(i int) int { return i })
	Run(2, Options[int]{Workers: 1, Checkpoint: &CheckpointConfig{Path: path}},
		func(i int) int { return i + 100 })
	got := LoadCheckpoint[int](path, 2)
	if len(got) != 2 || got[0] != 100 || got[1] != 101 {
		t.Errorf("second run did not truncate: %v", got)
	}
}

func TestCheckpointIgnoresOutOfRangeIndexes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	var b strings.Builder
	for _, ln := range []ckptLine[int]{{I: -1, R: 7}, {I: 0, R: 1}, {I: 99, R: 7}} {
		j, _ := json.Marshal(ln)
		b.Write(j)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	got := LoadCheckpoint[int](path, 3)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("LoadCheckpoint = %v, want only index 0", got)
	}
}

func TestCheckpointParallelMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	seq := Run(32, Options[int]{Workers: 1,
		Checkpoint: &CheckpointConfig{Path: filepath.Join(dir, "seq.ckpt")}},
		func(i int) int { return i * i })
	par := Run(32, Options[int]{Workers: 8,
		Checkpoint: &CheckpointConfig{Path: filepath.Join(dir, "par.ckpt")}},
		func(i int) int { return i * i })
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel checkpointed results differ from sequential")
	}
	// Both files restore to the same map even though parallel append
	// order differs.
	a := LoadCheckpoint[int](filepath.Join(dir, "seq.ckpt"), 32)
	b := LoadCheckpoint[int](filepath.Join(dir, "par.ckpt"), 32)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("restored maps differ: %v vs %v", a, b)
	}
}
