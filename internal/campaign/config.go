package campaign

import "repro/internal/obs"

// Config is the execution configuration shared by every layer that runs
// campaigns: the core pipeline, the trigger, and the baselines all
// embed it, so a new execution knob is added here once and surfaces on
// every Options type at the same time. The zero value is fully usable
// (default worker pool, no checkpointing, no observability).
type Config struct {
	// Workers bounds how many jobs run concurrently. Zero or negative
	// means one worker per CPU; 1 forces sequential execution. Results
	// are identical for any worker count.
	Workers int
	// CheckpointPath, when non-empty, makes the campaign resumable:
	// finished jobs are appended to this JSONL file as they complete.
	CheckpointPath string
	// Resume reloads CheckpointPath before running and skips the jobs
	// already recorded there.
	Resume bool
	// Sink, when non-nil, observes the campaign as obs events: one
	// CampaignStart, a RunDone per completed job (annotated with the
	// domain fields by the owning layer), nested PhaseEnds, and one
	// CampaignEnd. Sink implementations must be safe for concurrent
	// use; see the obs package comment for the ordering contract.
	Sink obs.Sink
}

// Checkpoint renders the engine-level checkpoint config; nil when
// checkpointing is off.
func (c Config) Checkpoint() *CheckpointConfig {
	if c.CheckpointPath == "" {
		return nil
	}
	return &CheckpointConfig{Path: c.CheckpointPath, Resume: c.Resume}
}
