package campaign

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Config is the execution configuration shared by every layer that runs
// campaigns: the core pipeline, the trigger, and the baselines all
// embed it, so a new execution knob is added here once and surfaces on
// every Options type at the same time. The zero value is fully usable
// (default worker pool, no checkpointing, no observability).
type Config struct {
	// Workers bounds how many jobs run concurrently. Zero or negative
	// means one worker per CPU; 1 forces sequential execution. Results
	// are identical for any worker count.
	Workers int
	// CheckpointPath, when non-empty, makes the campaign resumable:
	// finished jobs are appended to this JSONL file as they complete.
	CheckpointPath string
	// Resume reloads CheckpointPath before running and skips the jobs
	// already recorded there.
	Resume bool
	// StallTimeout, when positive, arms the stall watchdog on every
	// campaign this config drives: a run exceeding the wall-clock budget
	// is abandoned and reported as a harness error naming its point
	// ordinal and scenario. Off by default — stall verdicts depend on
	// wall-clock speed, so a campaign that trips the watchdog is no
	// longer deterministic; fleet workers arm it so a livelocked job
	// surfaces as an actionable report instead of an expired lease.
	StallTimeout time.Duration
	// Sink, when non-nil, observes the campaign as obs events: one
	// CampaignStart, a RunDone per completed job (annotated with the
	// domain fields by the owning layer), nested PhaseEnds, and one
	// CampaignEnd. Sink implementations must be safe for concurrent
	// use; see the obs package comment for the ordering contract.
	Sink obs.Sink
	// Recorder, when non-nil, receives one RunRecord per completed run
	// after the campaign finishes. The owning layer flattens its domain
	// result into the record and delivers them in run order (not
	// completion order), so repeat campaigns append identically to a
	// triage store. Recorder implementations must be safe for use from
	// concurrently running campaigns.
	Recorder RunRecorder
}

// RunRecord is the layer-neutral flattening of one campaign run that
// the triage subsystem persists. The campaign engine defines the shape
// so trigger, baseline and triage can exchange it without importing
// each other; only the owning layer knows how to fill it in.
type RunRecord struct {
	System   string // runner name
	Campaign string // campaign kind: "test", "recovery", "random", "io", "triage"
	Run      int    // run index within the campaign
	Seed     int64  // seed the run executed under
	Scale    int    // cluster scale

	Point    string // static crash point id ("" for baseline campaigns)
	Scenario string // crashpoint.Scenario string form
	Stack    string // raw dynamic stack, needed to re-execute the run

	Fault      string   // injected fault kind ("crash", "shutdown")
	Target     string   // injected fault target node
	Outcome    string   // oracle verdict string
	Failing    bool     // whether the oracle flagged the run as a bug
	Exceptions []string // raw new-exception signatures
	Witnesses  []string // oracle witness lines
	Reason     string   // harness-error reason, if any
	Duration   sim.Time // simulated duration of the run
}

// RunRecorder consumes RunRecords; the triage store implements it.
type RunRecorder interface {
	Record(RunRecord)
}

type multiRecorder []RunRecorder

func (m multiRecorder) Record(rr RunRecord) {
	for _, r := range m {
		r.Record(rr)
	}
}

// MultiRecorder fans records out to every non-nil recorder, mirroring
// obs.Multi: nil inputs are dropped, and a nil result preserves the
// no-recorder fast path.
func MultiRecorder(recorders ...RunRecorder) RunRecorder {
	var kept multiRecorder
	for _, r := range recorders {
		if r != nil {
			kept = append(kept, r)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// Checkpoint renders the engine-level checkpoint config; nil when
// checkpointing is off.
func (c Config) Checkpoint() *CheckpointConfig {
	if c.CheckpointPath == "" {
		return nil
	}
	return &CheckpointConfig{Path: c.CheckpointPath, Resume: c.Resume}
}
