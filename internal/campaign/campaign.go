// Package campaign is the execution engine for fault-injection
// campaigns. A campaign is an embarrassingly parallel workload: the
// paper tests one fresh run of the system under test per dynamic crash
// point (§3.2), and every run in this reproduction is an independent,
// deterministically-seeded simulation. The engine fans a fixed number of
// jobs out across a bounded worker pool and collects the results into a
// slice indexed by job position, so downstream aggregation (summaries,
// tables) is byte-identical regardless of scheduling interleavings.
//
// Workers defaults to runtime.GOMAXPROCS(0); workers=1 degenerates to an
// in-place sequential loop, so sequential execution is the special case
// of the same code path, not a second implementation.
package campaign

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the pool size used when Options.Workers is zero or
// negative: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Options configures one pool run.
type Options struct {
	// Workers bounds the number of jobs in flight. Zero or negative
	// means DefaultWorkers(); 1 runs the jobs inline, in order.
	Workers int
	// Progress, when non-nil, is invoked after every completed job with
	// the number of jobs finished so far and the total. Calls are
	// serialized and done is strictly increasing, so the callback needs
	// no locking of its own; it must not block for long, since it is on
	// the workers' completion path.
	Progress func(done, total int)
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = DefaultWorkers()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn(0) … fn(n-1) on the pool and returns the n results
// indexed by job position. Each job must be self-contained: fn is called
// from multiple goroutines, with no ordering guarantee between jobs.
func Run[T any](n int, opts Options, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers := opts.workers(n)

	if workers == 1 {
		// The sequential special case of the same code path: jobs run
		// inline, in index order.
		for i := 0; i < n; i++ {
			out[i] = fn(i)
			if opts.Progress != nil {
				opts.Progress(i+1, n)
			}
		}
		return out
	}

	var (
		mu   sync.Mutex // serializes Progress
		done int
		wg   sync.WaitGroup
		jobs = make(chan int)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Each worker writes only its own index; no two jobs
				// share a slot, so the slice needs no lock.
				out[i] = fn(i)
				if opts.Progress != nil {
					mu.Lock()
					done++
					opts.Progress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
