// Package campaign is the execution engine for fault-injection
// campaigns. A campaign is an embarrassingly parallel workload: the
// paper tests one fresh run of the system under test per dynamic crash
// point (§3.2), and every run in this reproduction is an independent,
// deterministically-seeded simulation. The engine fans a fixed number of
// jobs out across a bounded worker pool and collects the results into a
// slice indexed by job position, so downstream aggregation (summaries,
// tables) is byte-identical regardless of scheduling interleavings.
//
// Workers defaults to runtime.GOMAXPROCS(0); workers=1 degenerates to an
// in-place sequential loop, so sequential execution is the special case
// of the same code path, not a second implementation.
//
// Long campaigns are protected three ways, all opt-in through Options:
//
//   - Panic isolation (Recover): a job whose fn panics yields
//     Recover(i, v) as its result instead of crashing the campaign.
//   - Stall watchdog (StallTimeout/OnStall): a job that exceeds its
//     wall-clock budget is abandoned and reported via OnStall.
//   - Checkpointing (Checkpoint): finished jobs are appended to a JSONL
//     file as they complete, and a later run can resume from it,
//     re-executing only the unfinished jobs.
package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultWorkers is the pool size used when Options.Workers is zero or
// negative: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Pool-level instruments on the default registry: worker utilization
// (jobs in flight vs. jobs finished) plus the two harness-protection
// counters. Updated with lock-free atomics on the job path.
var (
	jobsInflight = obs.Default.Gauge("crashtuner_campaign_jobs_inflight")
	jobsTotal    = obs.Default.Counter("crashtuner_campaign_jobs_total")
	jobStalls    = obs.Default.Counter("crashtuner_campaign_stalls_total")
	jobPanics    = obs.Default.Counter("crashtuner_campaign_panics_total")
)

// Options configures one pool run.
type Options[T any] struct {
	// Workers bounds the number of jobs in flight. Zero or negative
	// means DefaultWorkers(); 1 runs the jobs inline, in order.
	Workers int
	// Sink, when non-nil, observes the campaign: one CampaignStart
	// before any job runs (Done carries the checkpoint-restored count),
	// one RunDone per completed job, and one CampaignEnd. Those events
	// are emitted under the completion lock with Done strictly
	// increasing. A sink that blocks forever only stalls the pool, it
	// cannot deadlock with a panicking job: panic recovery runs on the
	// job's own goroutine, before the completion lock is taken.
	Sink obs.Sink
	// Scope labels every emitted event (system under test, campaign
	// kind).
	Scope obs.Scope
	// Annotate, when non-nil, enriches the RunDone event for job i with
	// domain detail (crash point, oracle outcome, bug counts) before it
	// reaches the Sink. It is called under the completion lock, in
	// completion order, so closures over shared counters need no
	// locking of their own.
	Annotate func(ev *obs.Event, i int, r T)
	// Recover, when non-nil, isolates panics: a job whose fn panics
	// yields Recover(i, v) as its result — v is the recovered panic
	// value — instead of crashing the whole campaign. When nil, a panic
	// propagates and kills the process, as a plain function call would.
	Recover func(i int, v any) T
	// StallTimeout, when positive, bounds each job's wall-clock runtime.
	// A job still running after the timeout is abandoned (its goroutine
	// leaks until fn returns on its own — the watchdog is a last resort
	// for livelocked jobs, not a cancellation mechanism) and OnStall
	// provides its result. Stalls are inherently wall-clock-dependent,
	// so a campaign that trips the watchdog is no longer deterministic;
	// prefer in-simulation step budgets and keep this as the backstop.
	StallTimeout time.Duration
	// OnStall supplies the result of a job abandoned by the stall
	// watchdog. When nil, the zero value of T is used.
	OnStall func(i int) T
	// Checkpoint, when non-nil with a non-empty Path, makes the campaign
	// resumable.
	Checkpoint *CheckpointConfig
}

// CheckpointConfig makes a campaign resumable across process
// interruptions. As jobs finish, their results are appended to Path as
// JSON lines of the form {"i":<index>,"r":<result>}; a later run with
// Resume set reloads the file, pre-fills the finished slots and executes
// only the remaining jobs. A malformed line — the usual artifact of
// being killed mid-write — is ignored on load, as are lines whose index
// is out of range for the resuming campaign; resuming onto a file with a
// torn tail first terminates the fragment so appended records stay on
// their own lines.
//
// Results must round-trip through encoding/json for resuming to
// reproduce them faithfully; note that nil and empty slices collapse to
// the same JSON, so byte-identity is guaranteed for rendered output, not
// for reflect.DeepEqual of in-memory results.
//
// A checkpoint file that cannot be opened for writing panics: silently
// running without the requested durability would be worse.
type CheckpointConfig struct {
	// Path is the JSONL checkpoint file.
	Path string
	// Resume reloads Path before running and skips restored jobs.
	// Without Resume the file is truncated and the campaign starts over.
	Resume bool
	// Every flushes the checkpoint file after that many completed jobs;
	// zero or negative flushes after every job.
	Every int
}

func (o Options[T]) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = DefaultWorkers()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn(0) … fn(n-1) on the pool and returns the n results
// indexed by job position. Each job must be self-contained: fn is called
// from multiple goroutines, with no ordering guarantee between jobs.
func Run[T any](n int, opts Options[T], fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	start := time.Now()
	out := make([]T, n)

	// Work out which jobs still need to run and pre-fill the rest from
	// the checkpoint.
	todo := make([]int, 0, n)
	restored := 0
	var ck *CheckpointWriter[T]
	if c := opts.Checkpoint; c != nil && c.Path != "" {
		var prior map[int]T
		if c.Resume {
			prior = LoadCheckpoint[T](c.Path, n)
		}
		for i := 0; i < n; i++ {
			if r, ok := prior[i]; ok {
				out[i] = r
				restored++
				continue
			}
			todo = append(todo, i)
		}
		ck = NewCheckpointWriter[T](c)
		defer ck.Close()
	} else {
		for i := 0; i < n; i++ {
			todo = append(todo, i)
		}
	}

	done := restored
	lastBugs := 0
	if opts.Sink != nil {
		opts.Sink.Emit(obs.Event{Kind: obs.CampaignStart, Scope: opts.Scope, Run: -1, Done: restored, Total: n})
	}
	// emit reports one completed job under the completion lock (or
	// inline on the sequential path).
	emit := func(i, done int, r T, wall time.Duration) {
		ev := obs.Event{Kind: obs.RunDone, Scope: opts.Scope, Run: i, Done: done, Total: n, Wall: wall}
		if opts.Annotate != nil {
			opts.Annotate(&ev, i, r)
		}
		lastBugs = ev.Bugs
		opts.Sink.Emit(ev)
	}
	finish := func() []T {
		if opts.Sink != nil {
			opts.Sink.Emit(obs.Event{Kind: obs.CampaignEnd, Scope: opts.Scope, Run: -1,
				Done: done, Total: n, Bugs: lastBugs, Wall: time.Since(start)})
		}
		return out
	}
	if len(todo) == 0 {
		return finish()
	}

	workers := opts.workers(len(todo))
	if workers == 1 {
		// The sequential special case of the same code path: jobs run
		// inline, in index order.
		for _, i := range todo {
			t0 := time.Now()
			out[i] = runJob(opts, fn, i)
			done++
			if ck != nil {
				ck.Append(i, out[i])
			}
			if opts.Sink != nil {
				emit(i, done, out[i], time.Since(t0))
			}
		}
		return finish()
	}

	var (
		mu   sync.Mutex // serializes sink emission and checkpoint appends
		wg   sync.WaitGroup
		jobs = make(chan int)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Each worker writes only its own index; no two jobs
				// share a slot, so the slice needs no lock. Panic
				// recovery and the stall watchdog both live inside
				// runJob, before mu — a misbehaving job cannot take the
				// completion lock down with it.
				t0 := time.Now()
				out[i] = runJob(opts, fn, i)
				wall := time.Since(t0)
				if ck != nil || opts.Sink != nil {
					mu.Lock()
					done++
					if ck != nil {
						ck.Append(i, out[i])
					}
					if opts.Sink != nil {
						emit(i, done, out[i], wall)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, i := range todo {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return finish()
}

// runJob runs one job under the stall watchdog (if armed).
func runJob[T any](opts Options[T], fn func(i int) T, i int) T {
	jobsInflight.Add(1)
	defer func() {
		jobsInflight.Add(-1)
		jobsTotal.Inc()
	}()
	if opts.StallTimeout <= 0 {
		return execJob(opts, fn, i)
	}
	res := make(chan T, 1)
	go func() { res <- execJob(opts, fn, i) }()
	t := time.NewTimer(opts.StallTimeout)
	defer t.Stop()
	select {
	case v := <-res:
		return v
	case <-t.C:
		jobStalls.Inc()
		if opts.OnStall != nil {
			return opts.OnStall(i)
		}
		var zero T
		return zero
	}
}

// execJob runs fn(i) with panic isolation (if configured).
func execJob[T any](opts Options[T], fn func(i int) T, i int) (out T) {
	if opts.Recover != nil {
		defer func() {
			if v := recover(); v != nil {
				jobPanics.Inc()
				out = opts.Recover(i, v)
			}
		}()
	}
	return fn(i)
}

// ckptLine is one checkpoint record.
type ckptLine[T any] struct {
	I int `json:"i"`
	R T   `json:"r"`
}

// CheckpointWriter appends {"i":index,"r":result} JSONL records to one
// checkpoint file. The campaign engine drives it internally for
// Options.Checkpoint; it is exported so other resumability units built
// on the same file format — the fleet coordinator's per-shard
// checkpoints — write files a resumed campaign (or coordinator) loads
// back with LoadCheckpoint. Append/Close are not safe for concurrent
// use; callers serialize (the engine under its completion lock, the
// coordinator under its state lock).
type CheckpointWriter[T any] struct {
	f       *os.File
	w       *bufio.Writer
	every   int
	pending int
}

// NewCheckpointWriter opens c.Path for appending (Resume set: heal a
// torn tail first) or truncates it for a fresh start. Like the engine,
// it panics when the file cannot be opened: silently running without
// the requested durability would be worse.
func NewCheckpointWriter[T any](c *CheckpointConfig) *CheckpointWriter[T] {
	flag := os.O_CREATE
	if c.Resume {
		// O_RDWR so healTornTail can inspect the last byte.
		flag |= os.O_RDWR | os.O_APPEND
	} else {
		flag |= os.O_WRONLY | os.O_TRUNC
	}
	f, err := os.OpenFile(c.Path, flag, 0o644)
	if err != nil {
		panic(fmt.Sprintf("campaign: cannot open checkpoint %s: %v", c.Path, err))
	}
	if c.Resume {
		healTornTail(f)
	}
	every := c.Every
	if every <= 0 {
		every = 1
	}
	return &CheckpointWriter[T]{f: f, w: bufio.NewWriter(f), every: every}
}

// healTornTail terminates a checkpoint whose last write was cut off
// mid-line (killed mid-write) before new records are appended to it.
// Without the newline, the first appended record would concatenate onto
// the torn fragment and both lines would be lost on the next load.
func healTornTail(f *os.File) {
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, st.Size()-1); err != nil || last[0] == '\n' {
		return
	}
	f.Write([]byte{'\n'})
}

// Append records one finished job. A result that fails to marshal is
// simply not checkpointed — it will re-run on resume.
func (c *CheckpointWriter[T]) Append(i int, r T) {
	b, err := json.Marshal(ckptLine[T]{I: i, R: r})
	if err != nil {
		return
	}
	c.w.Write(b)
	c.w.WriteByte('\n')
	c.pending++
	if c.pending >= c.every {
		c.w.Flush()
		c.pending = 0
	}
}

// Close flushes buffered records and closes the file.
func (c *CheckpointWriter[T]) Close() {
	c.w.Flush()
	c.f.Close()
}

// LoadCheckpoint reads back a checkpoint file into an index→result map;
// indices outside [0, n) are dropped. A missing file yields an empty map
// (fresh start); malformed lines are skipped — a torn trailing fragment
// from an interrupted run stays in the file (newline-terminated by
// healTornTail on the resuming write) and must not shadow the intact
// records around it; later lines for the same index win.
func LoadCheckpoint[T any](path string, n int) map[int]T {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	restored := make(map[int]T)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		var ln ckptLine[T]
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			continue
		}
		if ln.I < 0 || ln.I >= n {
			continue
		}
		restored[ln.I] = ln.R
	}
	return restored
}
