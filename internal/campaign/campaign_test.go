package campaign

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestRunOrderIndependent(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		got := Run(50, Options[int]{Workers: workers}, func(i int) int { return i * i })
		want := make([]int, 50)
		for i := range want {
			want[i] = i * i
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results out of position: %v", workers, got)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run(0, Options[int]{}, func(int) int { return 1 }); got != nil {
		t.Errorf("n=0: want nil, got %v", got)
	}
}

func TestRunEveryJobOnce(t *testing.T) {
	var calls [64]int32
	Run(len(calls), Options[struct{}]{Workers: 4}, func(i int) struct{} {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}
	})
	for i, c := range calls {
		if c != 1 {
			t.Errorf("job %d ran %d times", i, c)
		}
	}
}

func TestSinkEventsMonotonic(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var seen []int
		starts, ends := 0, 0
		// Sink calls are serialized under the completion lock, so no
		// locking here.
		sink := obs.SinkFunc(func(ev obs.Event) {
			if ev.Total != 32 {
				t.Errorf("workers=%d: total=%d, want 32", workers, ev.Total)
			}
			switch ev.Kind {
			case obs.CampaignStart:
				starts++
				if ev.Done != 0 {
					t.Errorf("workers=%d: start with %d restored", workers, ev.Done)
				}
			case obs.RunDone:
				seen = append(seen, ev.Done)
			case obs.CampaignEnd:
				ends++
				if ev.Done != 32 {
					t.Errorf("workers=%d: end with done=%d", workers, ev.Done)
				}
			}
		})
		Run(32, Options[int]{Workers: workers, Sink: sink}, func(i int) int { return i })
		if starts != 1 || ends != 1 {
			t.Fatalf("workers=%d: %d starts, %d ends, want 1 each", workers, starts, ends)
		}
		if len(seen) != 32 {
			t.Fatalf("workers=%d: %d RunDone events, want 32", workers, len(seen))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("workers=%d: Done not strictly increasing: %v", workers, seen)
			}
		}
	}
}

func TestAnnotateSerializedAndOrdered(t *testing.T) {
	// Annotate runs under the completion lock: a closure over a shared
	// counter needs no locking, and the annotated fields reach the sink
	// on the matching event.
	bugs := 0
	var gotBugs []int
	sink := obs.SinkFunc(func(ev obs.Event) {
		if ev.Kind == obs.RunDone {
			gotBugs = append(gotBugs, ev.Bugs)
		}
	})
	Run(16, Options[int]{
		Workers: 8,
		Sink:    sink,
		Annotate: func(ev *obs.Event, i int, r int) {
			bugs++ // no lock: the Annotate contract serializes this
			ev.Bugs = bugs
			ev.Outcome = "ok"
		},
	}, func(i int) int { return i })
	if len(gotBugs) != 16 {
		t.Fatalf("%d annotated events, want 16", len(gotBugs))
	}
	for i, b := range gotBugs {
		if b != i+1 {
			t.Fatalf("annotated bug counts out of order: %v", gotBugs)
		}
	}
}

func TestWorkersClamped(t *testing.T) {
	// More workers than jobs must not deadlock or drop jobs.
	got := Run(3, Options[int]{Workers: 64}, func(i int) int { return i })
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("got %v", got)
	}
	if w := (Options[int]{Workers: -5}).workers(10); w != DefaultWorkers() && w != 10 {
		t.Errorf("negative workers resolved to %d", w)
	}
}
