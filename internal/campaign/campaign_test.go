package campaign

import (
	"reflect"
	"sync/atomic"
	"testing"
)

func TestRunOrderIndependent(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		got := Run(50, Options[int]{Workers: workers}, func(i int) int { return i * i })
		want := make([]int, 50)
		for i := range want {
			want[i] = i * i
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results out of position: %v", workers, got)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run(0, Options[int]{}, func(int) int { return 1 }); got != nil {
		t.Errorf("n=0: want nil, got %v", got)
	}
}

func TestRunEveryJobOnce(t *testing.T) {
	var calls [64]int32
	Run(len(calls), Options[struct{}]{Workers: 4}, func(i int) struct{} {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}
	})
	for i, c := range calls {
		if c != 1 {
			t.Errorf("job %d ran %d times", i, c)
		}
	}
}

func TestProgressMonotonic(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var seen []int
		Run(32, Options[int]{
			Workers: workers,
			// Serialized by the pool, so no locking here.
			Progress: func(done, total int) {
				if total != 32 {
					t.Errorf("workers=%d: total=%d, want 32", workers, total)
				}
				seen = append(seen, done)
			},
		}, func(i int) int { return i })
		if len(seen) != 32 {
			t.Fatalf("workers=%d: %d progress calls, want 32", workers, len(seen))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("workers=%d: progress not strictly increasing: %v", workers, seen)
			}
		}
	}
}

func TestWorkersClamped(t *testing.T) {
	// More workers than jobs must not deadlock or drop jobs.
	got := Run(3, Options[int]{Workers: 64}, func(i int) int { return i })
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("got %v", got)
	}
	if w := (Options[int]{Workers: -5}).workers(10); w != DefaultWorkers() && w != 10 {
		t.Errorf("negative workers resolved to %d", w)
	}
}
