// Yarnhunt: a deep bug hunt on the simulated Yarn cluster, walking every
// stage of the pipeline explicitly and printing a reproduction recipe for
// each bug found — the workflow of §4.1.2 (each reported issue came with
// a how-to-reproduce ledger).
//
//	go run ./examples/yarnhunt
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/crashpoint"
	"repro/internal/report"
	"repro/internal/systems/yarn"
)

func main() {
	system := &yarn.Runner{}
	opts := core.Options{Seed: 11, Scale: 1}

	// Stage 1 — log analysis + type-based static analysis.
	res, matcher := core.AnalysisPhase(system, opts)
	fmt.Println("== Stage 1: meta-info analysis ==")
	fmt.Printf("%d log patterns, %d parsed instances\n", res.Patterns, res.Parsed)
	fmt.Println(report.Table2(res.Analysis))
	pre, post := res.Static.ByScenario()
	fmt.Printf("static crash points: %d pre-read, %d post-write (pruned: ctor %d, unused %d, sanity %d)\n\n",
		len(pre), len(post), res.Static.Pruned.Constructor, res.Static.Pruned.Unused,
		res.Static.Pruned.SanityCheck)

	// Stage 2 — profiling.
	core.ProfilePhase(system, res, opts)
	fmt.Println("== Stage 2: dynamic crash points ==")
	for _, d := range res.Dynamic.Points {
		fmt.Printf("  %-12s %-68s stack %s\n", d.Scenario, d.Point, d.Stack)
	}
	fmt.Println()

	// Stage 3 — fault injection with the online stash.
	core.TestPhase(system, matcher, res, opts)
	fmt.Println("== Stage 3: injection campaign ==")
	for _, rep := range res.Reports {
		fmt.Printf("  %-18s %s\n", rep.Outcome, rep.Dyn.Point)
	}
	fmt.Println()

	// Reproduction recipes for the bugs found.
	fmt.Println("== Reproduction recipes ==")
	for _, rep := range res.Reports {
		if !rep.Outcome.IsBug() || rep.Injected == nil {
			continue
		}
		action := "crash"
		verb := "after the write at"
		if rep.Dyn.Scenario == crashpoint.PreRead {
			action = "gracefully shut down"
			verb = "right before the read at"
		}
		fmt.Printf("%v (%s):\n", rep.Witnesses, rep.Outcome)
		fmt.Printf("  1. run WordCount on a %d-node cluster\n", len(system.Hosts()))
		fmt.Printf("  2. %s node %s %s %s\n", action, rep.Injected.Node, verb, rep.Dyn.Point)
		fmt.Printf("  3. observe: %s", rep.Reason)
		if rep.Reason == "" {
			fmt.Printf("system hang / uncommon exceptions %v", rep.NewExceptions)
		}
		fmt.Printf(" (at virtual time %v)\n\n", rep.Injected.At)
	}

	// Verify the patches: the fixed system yields no bug reports.
	fixed := &yarn.Runner{
		FixCompleteNPE: true, FixJobStatsNPE: true, FixRemovedAttempt: true,
		FixRemovedNode: true, FixStaleCommit: true,
	}
	fres := core.Run(fixed, opts)
	fmt.Printf("== Patched system ==\nbug reports after applying all five patches: %d\n",
		fres.Summary.Bugs)
}
