// Quickstart: run the complete CrashTuner pipeline against the simulated
// Hadoop2/Yarn cluster and print what it finds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/systems/yarn"
)

func main() {
	// The system under test: a simulated Yarn cluster (1 RM + 2 NMs)
	// running WordCount, carrying the paper's crash-recovery bugs.
	system := &yarn.Runner{}

	// One call runs all of Fig. 4: log analysis, meta-info inference,
	// static crash points, profiling, and one fault-injection run per
	// dynamic crash point.
	res := core.Run(system, core.Options{Seed: 11, Scale: 1})

	fmt.Printf("CrashTuner quickstart on %s\n\n", system.Name())
	fmt.Printf("meta-info types inferred: %d\n", res.Analysis.Census().Types)
	fmt.Printf("static crash points:      %d\n", len(res.Static.Points))
	fmt.Printf("dynamic crash points:     %d\n", len(res.Dynamic.Points))
	fmt.Printf("injection runs:           %d (virtual cluster time %v)\n\n",
		res.Summary.Tested, res.Timing.VirtualTest)

	fmt.Println("bug reports:")
	for _, rep := range res.Reports {
		if !rep.Outcome.IsBug() {
			continue
		}
		fmt.Printf("  %-20s at %s\n", rep.Outcome, rep.Dyn.Point)
		for _, w := range rep.Witnesses {
			fmt.Printf("      -> reproduces %s\n", w)
		}
	}
	fmt.Printf("\nseeded bugs detected: %v\n", res.Summary.WitnessedBugs)
}
