// Baselines: reproduce the §4.2 comparison on one system — CrashTuner's
// targeted injection vs random crash injection vs IO fault injection.
//
//	go run ./examples/baselines [-system hbase] [-runs 300]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/systems/all"
)

func main() {
	system := flag.String("system", "hbase", "system under test")
	runs := flag.Int("runs", 300, "random-injection runs (paper: 3000)")
	flag.Parse()

	r, err := all.ByName(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := core.Options{Seed: 11, Scale: 1}

	// CrashTuner.
	res, matcher := core.AnalysisPhase(r, opts)
	core.ProfilePhase(r, res, opts)
	core.TestPhase(r, matcher, res, opts)
	fmt.Printf("CrashTuner on %s: %d targeted runs, %d bug reports, bugs %v (virtual %v)\n",
		r.Name(), res.Summary.Tested, res.Summary.Bugs,
		res.Summary.WitnessedBugs, res.Timing.VirtualTest)

	// Random crash injection (§4.2.1).
	ropts := baseline.Options{Seed: 11, Runs: *runs}
	rand := baseline.Random(r, res.Baseline, ropts)
	fmt.Printf("Random    on %s: %d runs, %d bug runs, distinct bugs %v (virtual %v)\n",
		r.Name(), rand.Runs, rand.BugRuns, rand.DistinctBugs(), rand.VirtualTime)

	// IO fault injection (§4.2.2).
	io := baseline.IOInjection(r, matcher, res.Baseline, ropts)
	fmt.Printf("IO-inject on %s: %d runs, %d bug runs, distinct bugs %v (virtual %v)\n",
		r.Name(), io.Runs, io.BugRuns, io.DistinctBugs(), io.VirtualTime)

	// The paper's efficiency claim: bugs found per run.
	fmt.Println()
	perRun := func(bugs, n int) string {
		if bugs == 0 {
			return "none"
		}
		return fmt.Sprintf("1 per %.1f runs", float64(n)/float64(bugs))
	}
	fmt.Printf("efficiency: CrashTuner %s; random %s; IO %s\n",
		perRun(len(res.Summary.WitnessedBugs), res.Summary.Tested),
		perRun(len(rand.DistinctBugs()), rand.Runs),
		perRun(len(io.DistinctBugs()), io.Runs))
}
