// Newsystem: how to put your own distributed system under CrashTuner.
//
// The toy master/worker system (internal/systems/toysys) is the template:
// it shows the three things a system under test must provide —
//
//  1. an executable behaviour on the simulator (cluster.Runner/Run),
//  2. an IR model of its code (classes, fields, methods, logging
//     statements) whose instruction indexes match the probe calls, and
//  3. probe calls at every candidate crash-point site.
//
// — plus two optional but strongly recommended contracts:
//
//   - schedule every mid-run timer through the keyed API
//     (sim.AfterKeyed/EveryKeyed with handlers registered via
//     Node.Handle) and implement cluster.Cloneable, so injection
//     campaigns fork your runs from deep-copied engine clones instead
//     of replaying each prefix from t=0. Systems that skip this still
//     work — the campaign transparently falls back to lean replay.
//
//   - implement cluster.Healer, so partition campaigns (-partition) can
//     re-admit nodes after a cut heals: Healed(isolated) should replay
//     your real reconnection protocol — re-registration, state reports,
//     work re-assignment — because resumed heartbeats alone never bring
//     back a node the liveness monitor already forgot. Feed the
//     split-brain/stale-read oracles through the gated Base helpers
//     (NoteSplitBrain, NoteStaleRead, NotePartitionLost); each is a
//     no-op unless a cut actually separates the two nodes, so crash
//     campaigns are unaffected. See toysys for the minimal version.
//
// This example runs the pipeline on it and walks through what each phase
// derived from the model, ending with the two seeded bugs found.
//
//	go run ./examples/newsystem
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/systems/toysys"
)

func main() {
	system := &toysys.Runner{Workers: 3}

	fmt.Println("Authoring checklist (see internal/systems/toysys):")
	fmt.Println("  1. implement cluster.Runner: Name, Workload, Hosts, Program, NewRun")
	fmt.Println("  2. model the code in IR; keep Pt* constants aligned with instruction indexes")
	fmt.Println("  3. call probe.PreRead/PostWrite at the matching sites, with runtime values")
	fmt.Println("  4. log meta-info the way real systems do — the analysis only sees your logs")
	fmt.Println("  5. schedule mid-run timers with AfterKeyed/EveryKeyed and implement")
	fmt.Println("     cluster.Cloneable, so campaigns fork clones instead of replaying prefixes")
	fmt.Println("  6. implement cluster.Healer (re-register isolated nodes after a cut heals)")
	fmt.Println("     and report oracle evidence via NoteSplitBrain/NoteStaleRead, so")
	fmt.Println("     -partition campaigns can cut your nodes and judge the reconnect")
	fmt.Println()

	// The model is analyzable on its own.
	p := system.Program()
	if errs := p.Validate(); len(errs) != 0 {
		fmt.Printf("model errors: %v\n", errs)
		return
	}
	c := p.Census()
	fmt.Printf("model: %d types, %d fields, %d access points\n", c.Types, c.Fields, c.AccessPoints)

	res := core.Run(system, core.Options{Seed: 7, Scale: 1})
	fmt.Printf("meta-info types: ")
	for _, ti := range res.Analysis.MetaTypes() {
		fmt.Printf("%s ", ti.Type)
	}
	fmt.Printf("\nstatic crash points: %d, dynamic: %d\n",
		len(res.Static.Points), len(res.Dynamic.Points))

	fmt.Println("\ncampaign:")
	for _, rep := range res.Reports {
		fmt.Printf("  %-14s %-34s witnesses=%v\n", rep.Outcome, rep.Dyn.Point, rep.Witnesses)
	}
	fmt.Printf("\nfound: %v (expected [%s %s])\n",
		res.Summary.WitnessedBugs, toysys.BugPreRead, toysys.BugPostWrite)
}
